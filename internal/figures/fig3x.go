package figures

import (
	"fmt"

	"hle/internal/harness"
	"hle/internal/stats"
	"hle/internal/tsx"
)

// Fig31 reproduces Figure 3.1: under 8 threads and the moderate 10/10/80
// mix, for each tree size report (a) the HLE speedup over the standard
// version of the same lock, (b) average execution attempts per critical
// section, and (c) the fraction of operations completing non-speculatively
// — for a TTAS and an MCS lock. The avalanche shows up as MCS pinned near
// attempts≈2 and non-speculative≈1 while TTAS recovers.
func Fig31(o Options) []*stats.Table {
	o = o.withDefaults()
	speed := &stats.Table{
		Title:  "Fig 3.1 (top) — HLE speedup over the standard lock, 10/10/80, 8 threads",
		Header: []string{"tree size", "TTAS", "MCS"},
	}
	work := &stats.Table{
		Title:  "Fig 3.1 (middle) — average execution attempts per critical section",
		Header: []string{"tree size", "TTAS total work", "MCS total work"},
	}
	frac := &stats.Table{
		Title:  "Fig 3.1 (bottom) — fraction of operations completing non-speculatively",
		Header: []string{"tree size", "TTAS non-spec", "MCS non-spec"},
	}
	var groups []dsGroup
	for _, size := range treeSizes(o) {
		groups = append(groups, dsGroup{
			size: size, mix: harness.MixModerate, mk: mkRBTree, threads: o.Threads,
			specs: []harness.SchemeSpec{
				{Scheme: "Standard", Lock: "TTAS"},
				{Scheme: "HLE", Lock: "TTAS"},
				{Scheme: "Standard", Lock: "MCS"},
				{Scheme: "HLE", Lock: "MCS"},
			},
		})
	}
	byGroup := dsRunGroups(o, groups)
	for gi, size := range treeSizes(o) {
		res := byGroup[gi]
		ttas := res["HLE TTAS"]
		mcs := res["HLE MCS"]
		speed.AddRow(stats.SizeLabel(size),
			stats.F2(ttas.Throughput/res["Standard TTAS"].Throughput),
			stats.F2(mcs.Throughput/res["Standard MCS"].Throughput))
		work.AddRow(stats.SizeLabel(size),
			stats.F2(ttas.Ops.AttemptsPerOp()),
			stats.F2(mcs.Ops.AttemptsPerOp()))
		frac.AddRow(stats.SizeLabel(size),
			stats.F3(ttas.Ops.NonSpecFraction()),
			stats.F3(mcs.Ops.NonSpecFraction()))
	}
	return []*stats.Table{speed, work, frac}
}

// Fig33 reproduces Figure 3.3: the run is divided into time slots
// (1 millisecond on the paper's machine; a fixed virtual-cycle slot here)
// and each slot reports throughput normalized to the run's mean, plus the
// slot's non-speculative fraction. MCS flatlines fully serialized; TTAS
// fluctuates, with throughput dips aligned to serialization bursts.
func Fig33(o Options) []*stats.Table {
	o = o.withDefaults()
	const size = 64
	budget := o.Budget * 2
	slot := budget / 50

	locks := []string{"MCS", "TTAS"}
	warm := &harness.WarmTemplate{
		Machine: machineCfg(o, size),
		MkWorkload: func(t *tsx.Thread) harness.Workload {
			return mkRBTree(t, size, harness.MixModerate)
		},
	}
	var points []harness.PointSpec
	for _, lock := range locks {
		points = append(points, harness.PointSpec{
			Warm:   warm,
			Scheme: harness.SchemeSpec{Scheme: "HLE", Lock: lock},
			Cfg: harness.Config{
				Threads:     o.Threads,
				CycleBudget: budget,
				SliceCycles: slot,
			},
		})
	}
	results := o.runPoints(points, func(i int) string { return "HLE " + locks[i] })

	var tables []*stats.Table
	for li, lock := range locks {
		res := results[li]
		norm := res.Timeline.NormalizedOps()
		fracs := res.Timeline.NonSpecFractions()
		// The final slot is partial (threads stop mid-slot at the
		// budget); drop it from the display series.
		if len(norm) > 1 {
			norm = norm[:len(norm)-1]
			fracs = fracs[:len(fracs)-1]
		}
		spark := &stats.Table{
			Title: fmt.Sprintf("Fig 3.3 — serialization dynamics, HLE %s lock, size %d, 10/10/80, %d threads",
				lock, size, o.Threads),
			Header: []string{"series", "per-slot sparkline", "mean", "min", "max"},
		}
		spark.AddRow("normalized ops", stats.Sparkline(norm, 2),
			stats.F2(mean(norm)), stats.F2(minOf(norm)), stats.F2(maxOf(norm)))
		spark.AddRow("non-spec frac", stats.Sparkline(fracs, 1),
			stats.F3(mean(fracs)), stats.F3(minOf(fracs)), stats.F3(maxOf(fracs)))
		tables = append(tables, spark)
	}
	return tables
}

// Fig34 reproduces Figure 3.4: the HLE speedup over the standard version of
// the same lock, for the three contention levels (lookups only, 10/10/80,
// 50/50) across tree sizes, for TTAS and MCS.
func Fig34(o Options) []*stats.Table {
	o = o.withDefaults()
	mixes := []harness.Mix{harness.MixLookupOnly, harness.MixModerate, harness.MixExtensive}
	var groups []dsGroup
	for _, mix := range mixes {
		for _, size := range treeSizes(o) {
			groups = append(groups, dsGroup{
				size: size, mix: mix, mk: mkRBTree, threads: o.Threads,
				specs: []harness.SchemeSpec{
					{Scheme: "Standard", Lock: "TTAS"},
					{Scheme: "HLE", Lock: "TTAS"},
					{Scheme: "Standard", Lock: "MCS"},
					{Scheme: "HLE", Lock: "MCS"},
				},
			})
		}
	}
	byGroup := dsRunGroups(o, groups)

	var tables []*stats.Table
	gi := 0
	for _, mix := range mixes {
		tb := &stats.Table{
			Title:  fmt.Sprintf("Fig 3.4 — HLE speedup vs standard lock, mix %s, %d threads", mix, o.Threads),
			Header: []string{"tree size", "TTAS", "MCS"},
		}
		for _, size := range treeSizes(o) {
			res := byGroup[gi]
			gi++
			tb.AddRow(stats.SizeLabel(size),
				stats.F2(res["HLE TTAS"].Throughput/res["Standard TTAS"].Throughput),
				stats.F2(res["HLE MCS"].Throughput/res["Standard MCS"].Throughput))
		}
		tables = append(tables, tb)
	}
	return tables
}

// Fig35 reproduces Figure 3.5: HLE-prefix-based elision versus the
// RTM-based equivalent the paper measures with, both normalized to the
// standard lock. The two mechanisms must track each other closely, which is
// what justified the paper's measurement methodology.
func Fig35(o Options) []*stats.Table {
	o = o.withDefaults()
	mixes := []harness.Mix{harness.MixLookupOnly, harness.MixModerate, harness.MixExtensive}
	var groups []dsGroup
	for _, mix := range mixes {
		for _, size := range treeSizes(o) {
			groups = append(groups, dsGroup{
				size: size, mix: mix, mk: mkRBTree, threads: o.Threads,
				specs: []harness.SchemeSpec{
					{Scheme: "Standard", Lock: "TTAS"},
					{Scheme: "HLE", Lock: "TTAS"},
					{Scheme: "RTM-LE", Lock: "TTAS"},
					{Scheme: "Standard", Lock: "MCS"},
					{Scheme: "HLE", Lock: "MCS"},
					{Scheme: "RTM-LE", Lock: "MCS"},
				},
			})
		}
	}
	byGroup := dsRunGroups(o, groups)

	var tables []*stats.Table
	gi := 0
	for _, mix := range mixes {
		tb := &stats.Table{
			Title: fmt.Sprintf("Fig 3.5 — HLE-based vs RTM-based elision, mix %s, %d threads",
				mix, o.Threads),
			Header: []string{"tree size", "HLE TTAS", "RTM TTAS", "HLE MCS", "RTM MCS"},
		}
		for _, size := range treeSizes(o) {
			res := byGroup[gi]
			gi++
			tb.AddRow(stats.SizeLabel(size),
				stats.F2(res["HLE TTAS"].Throughput/res["Standard TTAS"].Throughput),
				stats.F2(res["RTM-LE TTAS"].Throughput/res["Standard TTAS"].Throughput),
				stats.F2(res["HLE MCS"].Throughput/res["Standard MCS"].Throughput),
				stats.F2(res["RTM-LE MCS"].Throughput/res["Standard MCS"].Throughput))
		}
		tables = append(tables, tb)
	}
	return tables
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func minOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := v[0]
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := v[0]
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
