package figures_test

import (
	"strings"
	"testing"

	"hle/internal/figures"
)

func tinyOpts() figures.Options {
	return figures.Options{Threads: 4, Quick: true, Seed: 1, Budget: 100_000}
}

// TestEveryFigureRuns: each generator produces non-empty tables with
// consistent row widths at tiny scale.
func TestEveryFigureRuns(t *testing.T) {
	for _, f := range figures.All() {
		f := f
		t.Run(f.ID, func(t *testing.T) {
			tables := f.Run(tinyOpts())
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Header) == 0 {
					t.Fatalf("table %q has no header", tb.Title)
				}
				if len(tb.Rows) == 0 {
					t.Fatalf("table %q has no rows", tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Fatalf("table %q: row width %d != header width %d",
							tb.Title, len(row), len(tb.Header))
					}
				}
				rendered := tb.String()
				if !strings.Contains(rendered, tb.Header[0]) {
					t.Fatalf("table %q did not render its header", tb.Title)
				}
			}
		})
	}
}

// TestByID round-trips the registry.
func TestByID(t *testing.T) {
	for _, f := range figures.All() {
		got := figures.ByID(f.ID)
		if got == nil || got.Title != f.Title {
			t.Fatalf("ByID(%q) failed", f.ID)
		}
	}
	if figures.ByID("nope") != nil {
		t.Fatal("ByID of unknown id should be nil")
	}
}

// TestDeterministicFigures: the same options produce identical tables.
func TestDeterministicFigures(t *testing.T) {
	f := figures.ByID("3.1")
	a := f.Run(tinyOpts())
	b := f.Run(tinyOpts())
	if len(a) != len(b) {
		t.Fatal("table count mismatch")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("figure 3.1 table %d differs between identical runs:\n%s\nvs\n%s",
				i, a[i].String(), b[i].String())
		}
	}
}

// TestRunAllWrites exercises the aggregate runner on the two cheapest
// figures' worth of output by checking RunAll produces output containing
// every figure header. (Full-scale runs happen via cmd/hle-bench.)
func TestRunAllWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is expensive")
	}
	var sb strings.Builder
	figures.RunAll(&sb, tinyOpts())
	out := sb.String()
	for _, f := range figures.All() {
		if !strings.Contains(out, "Figure "+f.ID) {
			t.Errorf("RunAll output missing figure %s", f.ID)
		}
	}
}
