package figures_test

import (
	"strings"
	"testing"

	"hle/internal/figures"
)

// renderFigure runs a figure and renders its tables to one string, the same
// way cmd/hle-bench prints them.
func renderFigure(t *testing.T, id string, o figures.Options) string {
	t.Helper()
	fig := figures.ByID(id)
	if fig == nil {
		t.Fatalf("unknown figure %q", id)
	}
	var sb strings.Builder
	for _, tb := range fig.Run(o) {
		tb.Fprint(&sb)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestParallelismDoesNotChangeOutput is the determinism regression test for
// the host-parallel runner: with a fixed seed, rendered figure tables must
// be byte-identical whether points run on one worker or eight. Figure 3.1
// exercises the template-clone path (many groups × schemes); abl-spur
// exercises the fresh-machine path; ext-chaos exercises the chaos soak
// path, where every point carries its own injector, watchdog, and trace
// ring — the table doubles as the assertion that the injection hooks are
// zero-cost when no fault fires: any hook overhead or cross-point state
// leak would shift a soak's interleaving and change the counted columns
// between worker counts. ext-adapt exercises the adaptive scheme's
// controller, feed, and hot-swap drain bookkeeping (all per-machine state
// touched on the simulated hot path) plus its always-on profile
// collection — the switch counts in the table would expose any
// worker-count-dependent controller behavior. ext-shard exercises the
// sharded-store path: per-point scheme construction over a shared warm
// Data image (MkScheme after the checkpoint fork), harness op routing,
// and the heatmap table built from always-attached hot-point profiles.
// ext-place exercises the placement matrix: per-regime warm templates
// (including the serially-derived auto-pad template), always-on profiles
// feeding the attribution tables, and the two-phase STAMP grid whose
// packed runs seed the auto-pad plans. ext-lazy exercises the
// direct-drive subscription sweep: per-point machines, always-on
// attribution, and per-point correctness accounting.
func TestParallelismDoesNotChangeOutput(t *testing.T) {
	for _, id := range []string{"3.1", "abl-spur", "ext-chaos", "ext-adapt", "ext-shard", "ext-place", "ext-lazy"} {
		o := tinyOpts()
		o.Parallel = 1
		seq := renderFigure(t, id, o)
		o.Parallel = 8
		par := renderFigure(t, id, o)
		if seq != par {
			t.Errorf("figure %s output differs between -parallel 1 and -parallel 8:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s",
				id, seq, par)
		}
	}
}
