package figures_test

import (
	"testing"

	"hle/internal/figures"
)

// TestPlaceSweepBench checks the recorded benchmark's shape and the
// sweep's headline claim: the auto-pad pass reduces data-line conflict
// aborts vs packed on at least one workload (the acceptance criterion the
// checked-in BENCH_place.json reports).
func TestPlaceSweepBench(t *testing.T) {
	o := tinyOpts()
	o.Parallel = 4
	bench, tables := figures.PlaceSweep(o)
	if len(tables) != 4 {
		t.Fatalf("expected 4 tables, got %d", len(tables))
	}
	if len(bench.Points) == 0 || len(bench.AutoPad) == 0 {
		t.Fatal("empty bench record")
	}
	policies := map[string]bool{}
	for _, p := range bench.Points {
		policies[p.Policy] = true
		if p.Runtime == 0 && p.Throughput == 0 {
			t.Errorf("point %s/%s/%s measured nothing", p.Workload, p.Policy, p.Scheme)
		}
	}
	for _, want := range []string{"packed", "padded", "colored", "arena", "auto-pad"} {
		if !policies[want] {
			t.Errorf("no points for policy %s", want)
		}
	}
	reduced := false
	for _, e := range bench.AutoPad {
		if e.AutoPadData < e.PackedData {
			reduced = true
		}
	}
	if !reduced {
		t.Errorf("auto-pad reduced data-line conflicts on no workload: %+v", bench.AutoPad)
	}
}
