package figures

import (
	"encoding/json"
	"fmt"

	"hle/internal/core"
	"hle/internal/harness"
	"hle/internal/obs"
	"hle/internal/shard"
	"hle/internal/stats"
	"hle/internal/traffic"
)

// shardSchemes are the per-shard synchronization schemes the sharded
// sweep compares. Standard is the plain-lock baseline; the others elide.
var shardSchemes = []string{"Standard", "HLE", "HLE-SCM", "Adaptive"}

// ShardPoint is one measured point of the sharded sweep.
type ShardPoint struct {
	Shards     int     `json:"shards"`
	Scheme     string  `json:"scheme"`
	Skew       float64 `json:"skew"`
	Mix        string  `json:"mix"`
	Throughput float64 `json:"ops_per_mcycle"`
}

// ShardRegimes summarizes the two regimes the sweep demonstrates, both at
// the moderate mix: under uniform load, sharding with plain locks beats a
// single elided global lock (partitioning removes the contention elision
// struggles with); under high Zipf skew the traffic re-concentrates on a
// hot shard and elision inside that shard beats plain locking at the same
// shard count. CrossoverSkew is the lowest swept skew where an eliding
// scheme overtakes the plain-lock sharded store.
type ShardRegimes struct {
	UniformGlobalElision float64 `json:"uniform_global_elision"`
	UniformShardedPlain  float64 `json:"uniform_sharded_plain"`
	ShardingGain         float64 `json:"sharding_gain"`

	SkewShardedPlain float64 `json:"skew_sharded_plain"`
	SkewBestElided   float64 `json:"skew_best_elided"`
	SkewBestScheme   string  `json:"skew_best_scheme"`
	ElisionGain      float64 `json:"elision_gain"`

	// CrossoverSkew is -1 when no swept skew let elision win.
	CrossoverSkew float64 `json:"crossover_skew"`
}

// ShardBench is the recorded result of one sharded sweep, written to
// BENCH_shard.json by hle-bench -shard-bench and checked by -shard-guard.
type ShardBench struct {
	Threads int          `json:"threads"`
	Budget  uint64       `json:"budget"`
	Runs    int          `json:"runs"`
	Quick   bool         `json:"quick"`
	Keys    int          `json:"keys"`
	Seconds float64      `json:"seconds"`
	Points  []ShardPoint `json:"points"`
	Regimes ShardRegimes `json:"regimes"`
}

// JSON renders the benchmark record.
func (b *ShardBench) JSON() []byte {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		panic("figures: marshal shard bench: " + err.Error())
	}
	return append(out, '\n')
}

// shardAxes returns the sweep axes at the requested scale. The moderate
// mix comes first: the regime summary and heatmap read it.
func shardAxes(o Options) (shardCounts []int, skews []float64, mixes []harness.Mix) {
	shardCounts = []int{1, 4, 16}
	skews = []float64{0, 0.4, 0.8, 1.2}
	if o.Quick {
		shardCounts = []int{1, 8}
		skews = []float64{0, 1.2}
	}
	return shardCounts, skews, []harness.Mix{harness.MixModerate, harness.MixExtensive}
}

// ExtShard sweeps the sharded store across shard count × per-shard scheme
// × Zipf skew × operation mix under the traffic generator, reporting
// throughput, the two regimes (sharding vs global elision under uniform
// load; elision vs plain locks inside hot shards under skew), the
// skew crossover, and a per-shard abort heatmap for the hottest
// configuration.
func ExtShard(o Options) []*stats.Table {
	_, tables := ShardSweep(o)
	return tables
}

// ShardSweep runs the sharded sweep and returns both the benchmark record
// (for BENCH_shard.json) and the rendered tables. The Seconds field is
// zero; the caller stamps wall-clock time (tables never include it, so
// figure output stays byte-identical across hosts and -parallel).
func ShardSweep(o Options) (*ShardBench, []*stats.Table) {
	o = o.withDefaults()
	shardCounts, skews, mixes := shardAxes(o)
	const keys = 512

	// One warm template per (mix, skew, shards): the populated store image
	// is shared by that cell's scheme points. Each template is forked once
	// up front to expose its Data handle — the structure's addresses are
	// identical in every fork of the same image, so per-point stores bind
	// to it after the checkpoint fork.
	type cell struct {
		tmpl *harness.WarmTemplate
		data *shard.Data
	}
	cells := make(map[[3]int]cell)
	for mi, mix := range mixes {
		for zi, skew := range skews {
			for hi, shards := range shardCounts {
				mix, skew, shards := mix, skew, shards
				cfg := machineCfg(o, 4*keys)
				cfg.MemWords = keys*64 + 1<<17
				tmpl := &harness.WarmTemplate{
					Machine: cfg,
					MkWorkload: func(t *tsxThread) harness.Workload {
						return traffic.New(t, shard.DataConfig{Shards: shards, Backend: shard.RBTree},
							traffic.Spec{Keys: keys, Mix: mix, ZipfS: skew})
					},
				}
				_, w := tmpl.Fork()
				cells[[3]int{mi, zi, hi}] = cell{tmpl, w.(*traffic.Workload).Data()}
			}
		}
	}

	maxShards := shardCounts[len(shardCounts)-1]
	maxSkew := skews[len(skews)-1]
	type coord struct{ mi, zi, hi, ki int }
	var points []harness.PointSpec
	var coords []coord
	for mi := range mixes {
		for zi, skew := range skews {
			for hi, shards := range shardCounts {
				c := cells[[3]int{mi, zi, hi}]
				for ki, scheme := range shardSchemes {
					cfg := harness.Config{Threads: o.Threads, CycleBudget: o.Budget, Warmup: o.Budget}
					cfg.Profile = o.Profile
					if cfg.Profile == nil && mi == 0 && skew == maxSkew && shards == maxShards {
						// The hot-shard heatmap reads these points' profiles
						// even when the figure run is not profiling;
						// collection is passive, so measurements are
						// unchanged.
						cfg.Profile = &obs.Options{}
					}
					data, maker := c.data, shard.SchemeMakerByName(scheme)
					points = append(points, harness.PointSpec{
						Warm: c.tmpl,
						MkScheme: func(t *tsxThread) core.Scheme {
							return traffic.Route(shard.Bind(t, data, shard.StoreConfig{MkScheme: maker}))
						},
						Seed: harness.DeriveSeed(o.Seed, mi, zi, hi, ki),
						Runs: o.Runs,
						Cfg:  cfg,
					})
					coords = append(coords, coord{mi, zi, hi, ki})
				}
			}
		}
	}
	results := harness.RunPoints(o.Parallel, points)
	pointName := func(c coord) string {
		return fmt.Sprintf("%s/z%.1f/s%d/%s", mixes[c.mi], skews[c.zi], shardCounts[c.hi], shardSchemes[c.ki])
	}
	if o.Profile != nil && o.ProfileSink != nil {
		for pi, r := range results {
			if r.Profile != nil {
				o.ProfileSink(pointName(coords[pi]), r.Profile)
			}
		}
	}

	byPoint := make(map[coord]harness.Result, len(results))
	for pi, r := range results {
		byPoint[coords[pi]] = r
	}
	tput := func(mi, zi, hi, ki int) float64 { return byPoint[coord{mi, zi, hi, ki}].Throughput }
	bestElided := func(mi, zi, hi int) (float64, string) {
		best, name := 0.0, ""
		for ki, scheme := range shardSchemes {
			if scheme == "Standard" {
				continue
			}
			if v := tput(mi, zi, hi, ki); v > best {
				best, name = v, scheme
			}
		}
		return best, name
	}

	bench := &ShardBench{Threads: o.Threads, Budget: o.Budget, Runs: o.Runs, Quick: o.Quick, Keys: keys}

	// Main sweep table.
	sweep := &stats.Table{
		Title: fmt.Sprintf("Extension — sharded store under internet-shaped traffic, ops/Mcycle, rbtree %d keys, %d threads",
			keys, o.Threads),
		Header: append(append([]string{"mix", "skew", "shards"}, shardSchemes...), "best"),
	}
	for mi, mix := range mixes {
		for zi, skew := range skews {
			for hi, shards := range shardCounts {
				row := []string{mix.String(), stats.F2(skew), stats.I(shards)}
				best, bestName := 0.0, ""
				for ki, scheme := range shardSchemes {
					v := tput(mi, zi, hi, ki)
					bench.Points = append(bench.Points, ShardPoint{
						Shards: shards, Scheme: scheme, Skew: skew, Mix: mix.String(), Throughput: v,
					})
					row = append(row, stats.F2(v))
					if v > best {
						best, bestName = v, scheme
					}
				}
				sweep.AddRow(append(row, bestName)...)
			}
		}
	}

	// Regime summary (moderate mix, mi == 0).
	standardKi := 0
	r := &bench.Regimes
	r.UniformGlobalElision, _ = bestElided(0, 0, 0)
	r.UniformShardedPlain = tput(0, 0, len(shardCounts)-1, standardKi)
	if r.UniformGlobalElision > 0 {
		r.ShardingGain = r.UniformShardedPlain / r.UniformGlobalElision
	}
	r.SkewShardedPlain = tput(0, len(skews)-1, len(shardCounts)-1, standardKi)
	r.SkewBestElided, r.SkewBestScheme = bestElided(0, len(skews)-1, len(shardCounts)-1)
	if r.SkewShardedPlain > 0 {
		r.ElisionGain = r.SkewBestElided / r.SkewShardedPlain
	}
	r.CrossoverSkew = -1
	for zi, skew := range skews {
		best, _ := bestElided(0, zi, len(shardCounts)-1)
		if best >= tput(0, zi, len(shardCounts)-1, standardKi) {
			r.CrossoverSkew = skew
			break
		}
	}

	regimes := &stats.Table{
		Title:  fmt.Sprintf("Regimes (%s mix): partitioning vs elision, and where elision takes over", mixes[0]),
		Header: []string{"regime", "a", "a ops/Mc", "b", "b ops/Mc", "a/b"},
	}
	regimes.AddRow("uniform: sharded plain vs global elided",
		fmt.Sprintf("Standard x%d", maxShards), stats.F2(r.UniformShardedPlain),
		"best elided x1", stats.F2(r.UniformGlobalElision), stats.F2(r.ShardingGain))
	regimes.AddRow(fmt.Sprintf("skew %.1f: best elided vs sharded plain", maxSkew),
		fmt.Sprintf("%s x%d", r.SkewBestScheme, maxShards), stats.F2(r.SkewBestElided),
		fmt.Sprintf("Standard x%d", maxShards), stats.F2(r.SkewShardedPlain), stats.F2(r.ElisionGain))
	cross := "none"
	if r.CrossoverSkew >= 0 {
		cross = stats.F2(r.CrossoverSkew)
	}
	regimes.AddRow("crossover skew (elided >= plain, max shards)", cross, "", "", "", "")

	var hotProfiles []*obs.Profile
	for ki := range shardSchemes {
		hotProfiles = append(hotProfiles, byPoint[coord{0, len(skews) - 1, len(shardCounts) - 1, ki}].Profile)
	}
	tables := []*stats.Table{sweep, regimes}
	if hm := shardHeatmap(hotProfiles, mixes[0], maxSkew, maxShards); hm != nil {
		tables = append(tables, hm)
	}
	return bench, tables
}

// shardHeatmap renders per-shard conflict-abort attribution for the
// hottest configuration (moderate mix, max skew, max shards): one row per
// label-prefix group (shard), one column per scheme, counting conflict
// aborts on the group's lines with the lock-line subset in parentheses.
// Skew should light up few shards; uniform load spreads the heat.
// profiles holds one profile per entry of shardSchemes, in order.
func shardHeatmap(profiles []*obs.Profile, mix harness.Mix, skew float64, shards int) *stats.Table {
	heats := make([]map[string]obs.PrefixHeat, len(shardSchemes))
	var prefixes []string
	seen := make(map[string]bool)
	for ki := range shardSchemes {
		if profiles[ki] == nil {
			return nil
		}
		heats[ki] = make(map[string]obs.PrefixHeat)
		for _, g := range profiles[ki].HeatByPrefix() {
			heats[ki][g.Prefix] = g
			if !seen[g.Prefix] && g.Prefix != "?" {
				seen[g.Prefix] = true
				prefixes = append(prefixes, g.Prefix)
			}
		}
	}
	// Order shards by total heat across schemes, heaviest first, and keep
	// the table readable at 16 shards by showing the top 8.
	total := func(p string) uint64 {
		var n uint64
		for ki := range shardSchemes {
			n += heats[ki][p].Count
		}
		return n
	}
	for i := range prefixes {
		for j := i + 1; j < len(prefixes); j++ {
			ti, tj := total(prefixes[i]), total(prefixes[j])
			if tj > ti || (tj == ti && prefixes[j] < prefixes[i]) {
				prefixes[i], prefixes[j] = prefixes[j], prefixes[i]
			}
		}
	}
	if len(prefixes) > 8 {
		prefixes = prefixes[:8]
	}
	tb := &stats.Table{
		Title: fmt.Sprintf("Hot-shard abort heatmap (%s mix, skew %.1f, %d shards): conflict aborts per shard (lock-line subset)",
			mix, skew, shards),
		Header: append([]string{"shard"}, shardSchemes...),
	}
	for _, p := range prefixes {
		row := []string{p}
		for ki := range shardSchemes {
			g := heats[ki][p]
			row = append(row, fmt.Sprintf("%d(%d)", g.Count, g.LockCount))
		}
		tb.AddRow(row...)
	}
	return tb
}
