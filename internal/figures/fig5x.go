package figures

import (
	"fmt"

	"hle/internal/harness"
	"hle/internal/stats"
)

// schemeSet51 is the §5.1 methodology matrix for one lock.
func schemeSet51(lock string) []harness.SchemeSpec {
	return []harness.SchemeSpec{
		{Scheme: "Standard", Lock: lock},
		{Scheme: "HLE", Lock: lock},
		{Scheme: "HLE-SCM", Lock: lock},
		{Scheme: "Opt-SLR", Lock: lock},
		{Scheme: "Opt-SLR-SCM", Lock: lock},
	}
}

// Fig51 reproduces Figure 5.1: speedup versus thread count on a 128-node
// tree under moderate contention, normalized to a single thread with no
// locking. The software-assisted schemes must scale while plain HLE (and
// especially HLE MCS) stall.
func Fig51(o Options) []*stats.Table {
	o = o.withDefaults()
	const size = 128
	threadCounts := []int{1, 2, 4, 8}
	if o.Quick {
		threadCounts = []int{1, 4, 8}
	}

	// Group 0 is the normalization baseline — one thread, no locking —
	// then one group per (lock, thread count).
	locks := []string{"TTAS", "MCS"}
	groups := []dsGroup{{
		size: size, mix: harness.MixModerate, mk: mkRBTree, threads: 1,
		specs: []harness.SchemeSpec{{Scheme: "NoLock"}},
	}}
	for _, lock := range locks {
		for _, n := range threadCounts {
			groups = append(groups, dsGroup{
				size: size, mix: harness.MixModerate, mk: mkRBTree, threads: n,
				specs: schemeSet51(lock),
			})
		}
	}
	byGroup := dsRunGroups(o, groups)
	base := byGroup[0]["NoLock"].Throughput

	var tables []*stats.Table
	gi := 1
	for _, lock := range locks {
		tb := &stats.Table{
			Title: fmt.Sprintf("Fig 5.1 — speedup vs 1-thread no-locking baseline, %s lock, 128-node tree, 10/10/80",
				lock),
			Header: []string{"threads", "Standard", "HLE", "HLE-SCM", "Opt-SLR", "Opt-SLR-SCM"},
		}
		for _, n := range threadCounts {
			res := byGroup[gi]
			gi++
			tb.AddRow(stats.I(n),
				stats.F2(res["Standard "+lock].Throughput/base),
				stats.F2(res["HLE "+lock].Throughput/base),
				stats.F2(res["HLE-SCM "+lock].Throughput/base),
				stats.F2(res["Opt-SLR "+lock].Throughput/base),
				stats.F2(res["Opt-SLR-SCM "+lock].Throughput/base))
		}
		tables = append(tables, tb)
	}
	return tables
}

// schemeSet52 is the §5.2 sweep matrix for one lock.
func schemeSet52(lock string) []harness.SchemeSpec {
	return []harness.SchemeSpec{
		{Scheme: "HLE", Lock: lock},
		{Scheme: "HLE-SCM", Lock: lock},
		{Scheme: "Pes-SLR", Lock: lock},
		{Scheme: "Opt-SLR", Lock: lock},
		{Scheme: "Opt-SLR-SCM", Lock: lock},
	}
}

// Fig52 reproduces Figure 5.2: the speedup of each software-assisted scheme
// over the plain-HLE version of the same lock, across tree sizes and the
// three contention levels.
func Fig52(o Options) []*stats.Table {
	o = o.withDefaults()
	// One group per (mix, size) carrying both locks' schemes: the populated
	// tree is lock-agnostic, so sharing the group halves the populate work.
	mixes := []harness.Mix{harness.MixLookupOnly, harness.MixModerate, harness.MixExtensive}
	var groups []dsGroup
	for _, mix := range mixes {
		for _, size := range treeSizes(o) {
			groups = append(groups, dsGroup{
				size: size, mix: mix, mk: mkRBTree, threads: o.Threads,
				specs: append(schemeSet52("TTAS"), schemeSet52("MCS")...),
			})
		}
	}
	byGroup := dsRunGroups(o, groups)

	var tables []*stats.Table
	for _, lock := range []string{"TTAS", "MCS"} {
		gi := 0
		for _, mix := range mixes {
			tb := &stats.Table{
				Title: fmt.Sprintf("Fig 5.2 — speedup vs plain HLE baseline, %s lock, mix %s, %d threads",
					lock, mix, o.Threads),
				Header: []string{"tree size", "HLE-SCM", "Pes-SLR", "Opt-SLR", "Opt-SLR-SCM"},
			}
			for _, size := range treeSizes(o) {
				res := byGroup[gi]
				gi++
				base := res["HLE "+lock].Throughput
				tb.AddRow(stats.SizeLabel(size),
					stats.F2(res["HLE-SCM "+lock].Throughput/base),
					stats.F2(res["Pes-SLR "+lock].Throughput/base),
					stats.F2(res["Opt-SLR "+lock].Throughput/base),
					stats.F2(res["Opt-SLR-SCM "+lock].Throughput/base))
			}
			tables = append(tables, tb)
		}
	}
	return tables
}

// Fig53 reproduces Figure 5.3: under the extensive 50/50 mix, the average
// execution attempts per critical section and the non-speculative fraction
// — left pane compares HLE-SCM MCS against plain HLE MCS; right pane
// compares the software-assisted TTAS schemes.
func Fig53(o Options) []*stats.Table {
	o = o.withDefaults()
	left := &stats.Table{
		Title:  "Fig 5.3 (left) — HLE-SCM impact on the MCS lock, 50/50 mix, 8 threads",
		Header: []string{"tree size", "SCM attempts", "HLE attempts", "SCM non-spec", "HLE non-spec"},
	}
	right := &stats.Table{
		Title:  "Fig 5.3 (right) — software-assisted TTAS schemes, 50/50 mix, 8 threads",
		Header: []string{"tree size", "HLE-SCM att", "Opt-SLR att", "SLR-SCM att", "HLE-SCM ns", "Opt-SLR ns", "SLR-SCM ns"},
	}
	var groups []dsGroup
	for _, size := range treeSizes(o) {
		groups = append(groups, dsGroup{
			size: size, mix: harness.MixExtensive, mk: mkRBTree, threads: o.Threads,
			specs: []harness.SchemeSpec{
				{Scheme: "HLE", Lock: "MCS"},
				{Scheme: "HLE-SCM", Lock: "MCS"},
				{Scheme: "HLE-SCM", Lock: "TTAS"},
				{Scheme: "Opt-SLR", Lock: "TTAS"},
				{Scheme: "Opt-SLR-SCM", Lock: "TTAS"},
			},
		})
	}
	byGroup := dsRunGroups(o, groups)
	for gi, size := range treeSizes(o) {
		res := byGroup[gi]
		left.AddRow(stats.SizeLabel(size),
			stats.F2(res["HLE-SCM MCS"].Ops.AttemptsPerOp()),
			stats.F2(res["HLE MCS"].Ops.AttemptsPerOp()),
			stats.F3(res["HLE-SCM MCS"].Ops.NonSpecFraction()),
			stats.F3(res["HLE MCS"].Ops.NonSpecFraction()))
		right.AddRow(stats.SizeLabel(size),
			stats.F2(res["HLE-SCM TTAS"].Ops.AttemptsPerOp()),
			stats.F2(res["Opt-SLR TTAS"].Ops.AttemptsPerOp()),
			stats.F2(res["Opt-SLR-SCM TTAS"].Ops.AttemptsPerOp()),
			stats.F3(res["HLE-SCM TTAS"].Ops.NonSpecFraction()),
			stats.F3(res["Opt-SLR TTAS"].Ops.NonSpecFraction()),
			stats.F3(res["Opt-SLR-SCM TTAS"].Ops.NonSpecFraction()))
	}
	return []*stats.Table{left, right}
}

// FigHashTable is the §5.2 hash-table companion benchmark: the same scheme
// comparison on uniformly short transactions.
func FigHashTable(o Options) []*stats.Table {
	o = o.withDefaults()
	sizes := []int{64, 512, 4096}
	if o.Quick {
		sizes = []int{64, 1024}
	}
	var groups []dsGroup
	for _, size := range sizes {
		groups = append(groups, dsGroup{
			size: size, mix: harness.MixModerate, mk: mkHashTable, threads: o.Threads,
			specs: append(schemeSet52("TTAS"), schemeSet52("MCS")...),
		})
	}
	byGroup := dsRunGroups(o, groups)

	var tables []*stats.Table
	for _, lock := range []string{"TTAS", "MCS"} {
		tb := &stats.Table{
			Title: fmt.Sprintf("§5.2 hash table — speedup vs plain HLE baseline, %s lock, 10/10/80, %d threads",
				lock, o.Threads),
			Header: []string{"table size", "HLE-SCM", "Pes-SLR", "Opt-SLR", "Opt-SLR-SCM"},
		}
		for gi, size := range sizes {
			res := byGroup[gi]
			base := res["HLE "+lock].Throughput
			tb.AddRow(stats.SizeLabel(size),
				stats.F2(res["HLE-SCM "+lock].Throughput/base),
				stats.F2(res["Pes-SLR "+lock].Throughput/base),
				stats.F2(res["Opt-SLR "+lock].Throughput/base),
				stats.F2(res["Opt-SLR-SCM "+lock].Throughput/base))
		}
		tables = append(tables, tb)
	}
	return tables
}
