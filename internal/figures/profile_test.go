package figures_test

import (
	"bytes"
	"fmt"
	"testing"

	"hle/internal/figures"
	"hle/internal/obs"
)

// TestAbortAttributionAcrossFigures runs every figure generator with
// profiling on and asserts the attribution invariant on every collected
// profile: each abort is classified under exactly one cause, so the
// per-cause counts sum to the observed abort total, which in turn matches
// the engine's own counters wherever the harness stamped them.
func TestAbortAttributionAcrossFigures(t *testing.T) {
	for _, f := range figures.All() {
		f := f
		t.Run(f.ID, func(t *testing.T) {
			o := tinyOpts()
			o.Profile = &obs.Options{}
			profiles := 0
			o.ProfileSink = func(name string, p *obs.Profile) {
				profiles++
				if p == nil {
					t.Fatalf("%s: nil profile delivered", name)
				}
				if sum := p.CauseSum(); sum != p.TotalAborts {
					t.Errorf("%s: cause sum %d != total aborts %d", name, sum, p.TotalAborts)
				}
				if p.EngineAborts != 0 && p.EngineAborts != p.TotalAborts {
					t.Errorf("%s: engine aborts %d != attributed aborts %d",
						name, p.EngineAborts, p.TotalAborts)
				}
			}
			f.Run(o)
			if profiles == 0 {
				t.Fatalf("figure %s delivered no profiles", f.ID)
			}
		})
	}
}

// TestProfileOutputParallelDeterminism: with a fixed seed, the full
// profile stream of a figure — delivery order, names, and JSON bytes —
// must be identical whether points run on one host worker or eight.
// Figure 3.1 exercises the harness-pool path (collectors attached per
// cloned point); ext-chaos exercises the direct-drive path (collectors
// riding tsx.Config.Observer on fresh machines under fault injection).
func TestProfileOutputParallelDeterminism(t *testing.T) {
	collect := func(id string, parallel int) []byte {
		o := tinyOpts()
		o.Parallel = parallel
		o.Profile = &obs.Options{}
		var buf bytes.Buffer
		o.ProfileSink = func(name string, p *obs.Profile) {
			fmt.Fprintf(&buf, "== %s ==\n", name)
			buf.Write(p.JSON())
		}
		fig := figures.ByID(id)
		if fig == nil {
			t.Fatalf("unknown figure %q", id)
		}
		fig.Run(o)
		return buf.Bytes()
	}
	for _, id := range []string{"3.1", "ext-chaos", "ext-shard"} {
		seq := collect(id, 1)
		par := collect(id, 8)
		if len(seq) == 0 {
			t.Fatalf("figure %s collected no profile output", id)
		}
		if !bytes.Equal(seq, par) {
			t.Errorf("figure %s profile stream differs between -parallel 1 and -parallel 8", id)
		}
	}
}
