// kvstore: a coarse-grained key-value store protected by one global lock —
// the paper's motivating scenario. The store is a chained hash table built
// directly on the public API's simulated-memory operations; a mixed
// get/put/delete workload runs under each elision scheme, and the example
// prints throughput in virtual time, demonstrating that coarse-grained code
// plus elision approaches fine-grained performance.
package main

import (
	"fmt"

	"hle"
)

// kv is a fixed-size chained hash table in simulated memory.
// Bucket array: nbkt words (head pointers). Node: [key, val, next].
type kv struct {
	buckets hle.Addr
	nbkt    uint64
}

func newKV(t *hle.Thread, nbkt int) *kv {
	n := uint64(1)
	for n < uint64(nbkt) {
		n *= 2
	}
	return &kv{buckets: t.Alloc(int(n)), nbkt: n}
}

func (h *kv) bucket(key uint64) hle.Addr {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	return h.buckets + hle.Addr(key&(h.nbkt-1))
}

func (h *kv) get(t *hle.Thread, key uint64) (uint64, bool) {
	n := hle.Addr(t.Load(h.bucket(key)))
	for n != 0 {
		if t.Load(n) == key {
			return t.Load(n + 1), true
		}
		n = hle.Addr(t.Load(n + 2))
	}
	return 0, false
}

func (h *kv) put(t *hle.Thread, key, val uint64) {
	bkt := h.bucket(key)
	for n := hle.Addr(t.Load(bkt)); n != 0; n = hle.Addr(t.Load(n + 2)) {
		if t.Load(n) == key {
			if t.Load(n+1) != val {
				t.Store(n+1, val)
			}
			return
		}
	}
	node := t.Alloc(3)
	t.Store(node, key)
	t.Store(node+1, val)
	if head := t.Load(bkt); head != 0 {
		t.Store(node+2, head)
	}
	t.Store(bkt, uint64(node))
}

func (h *kv) del(t *hle.Thread, key uint64) bool {
	prev := h.bucket(key)
	n := hle.Addr(t.Load(prev))
	for n != 0 {
		next := hle.Addr(t.Load(n + 2))
		if t.Load(n) == key {
			t.Store(prev, uint64(next))
			t.Free(n, 3)
			return true
		}
		prev = n + 2
		n = next
	}
	return false
}

func main() {
	const (
		threads = 8
		keys    = 4096
		ops     = 3000
	)
	type variant struct {
		name  string
		build func(t *hle.Thread) hle.Scheme
	}
	variants := []variant{
		{"Standard TTAS", func(t *hle.Thread) hle.Scheme { return hle.Standard(hle.NewTTASLock(t)) }},
		{"HLE TTAS", func(t *hle.Thread) hle.Scheme { return hle.Elide(hle.NewTTASLock(t)) }},
		{"HLE-SCM TTAS", func(t *hle.Thread) hle.Scheme {
			return hle.Elide(hle.NewTTASLock(t), hle.WithSCM(hle.NewMCSLock(t)))
		}},
		{"Opt-SLR TTAS", func(t *hle.Thread) hle.Scheme { return hle.Removal(hle.NewTTASLock(t)) }},
	}

	fmt.Printf("%-14s %10s %14s %10s\n", "scheme", "ops", "ops/Mcycle", "speedup")
	var baseline float64
	for _, v := range variants {
		sys := hle.NewSystem(threads, hle.WithSeed(7), hle.WithMemory(1<<18))
		var store *kv
		var scheme hle.Scheme
		sys.Init(func(t *hle.Thread) {
			store = newKV(t, keys)
			for k := uint64(0); k < keys/2; k++ {
				store.put(t, k*2, k)
			}
			scheme = v.build(t)
		})
		ths := sys.Parallel(threads, func(t *hle.Thread) {
			scheme.Setup(t)
			for i := 0; i < ops; i++ {
				key := uint64(t.Rand().Intn(keys))
				switch t.Rand().Intn(10) {
				case 0:
					scheme.Run(t, func() { store.put(t, key, uint64(i)) })
				case 1:
					scheme.Run(t, func() { store.del(t, key) })
				default:
					scheme.Run(t, func() { store.get(t, key) })
				}
			}
		})
		var maxClock uint64
		for _, t := range ths {
			if t.Clock() > maxClock {
				maxClock = t.Clock()
			}
		}
		tput := float64(threads*ops) * 1e6 / float64(maxClock)
		if baseline == 0 {
			baseline = tput
		}
		fmt.Printf("%-14s %10d %14.1f %9.2fx\n", v.name, threads*ops, tput, tput/baseline)
	}
}
