// Quickstart: eight simulated threads increment a shared counter under a
// single coarse-grained lock, comparing plain locking, hardware lock
// elision, and elision with software-assisted conflict management.
//
// Because every thread writes the same counter, all critical sections
// truly conflict — the worst case for elision — yet SCM still avoids the
// avalanche's full serialization by keeping conflicting threads off the
// main lock.
package main

import (
	"fmt"

	"hle"
)

func main() {
	const threads = 8
	const opsPerThread = 2000

	type variant struct {
		name  string
		build func(t *hle.Thread) hle.Scheme
	}
	variants := []variant{
		{"Standard MCS", func(t *hle.Thread) hle.Scheme {
			return hle.Standard(hle.NewMCSLock(t))
		}},
		{"HLE MCS", func(t *hle.Thread) hle.Scheme {
			return hle.Elide(hle.NewMCSLock(t))
		}},
		{"HLE-SCM MCS", func(t *hle.Thread) hle.Scheme {
			return hle.Elide(hle.NewMCSLock(t), hle.WithSCM(hle.NewMCSLock(t)))
		}},
	}

	fmt.Printf("%-14s %12s %12s %12s %12s\n",
		"scheme", "ops", "virt cycles", "attempts/op", "non-spec")
	for _, v := range variants {
		sys := hle.NewSystem(threads, hle.WithSeed(1))
		var counter hle.Addr
		var scheme hle.Scheme
		sys.Init(func(t *hle.Thread) {
			counter = t.AllocLines(1)
			scheme = v.build(t)
		})
		ths := sys.Parallel(threads, func(t *hle.Thread) {
			scheme.Setup(t)
			for i := 0; i < opsPerThread; i++ {
				scheme.Run(t, func() {
					t.Store(counter, t.Load(counter)+1)
				})
			}
		})
		var maxClock uint64
		for _, t := range ths {
			if t.Clock() > maxClock {
				maxClock = t.Clock()
			}
		}
		var final uint64
		sys.Init(func(t *hle.Thread) { final = t.Load(counter) })
		if final != threads*opsPerThread {
			panic(fmt.Sprintf("lost updates: %d != %d", final, threads*opsPerThread))
		}
		st := scheme.TotalStats()
		fmt.Printf("%-14s %12d %12d %12.2f %12.3f\n",
			v.name, st.Ops, maxClock, st.AttemptsPerOp(), st.NonSpecFraction())
	}
}
