// avalanche: a visual demonstration of the paper's Chapter 3 pathology and
// its Chapter 4 cure. Six threads work on private counters — zero real data
// conflicts — while two threads fight over a shared counter. Under plain
// HLE with an MCS lock, every conflict-triggered abort acquires the lock
// for real and serializes all eight threads (the avalanche). Under HLE-SCM
// the two conflicting threads serialize between themselves on the auxiliary
// lock and the six innocent threads keep speculating.
//
// The example prints per-time-slot serialization dynamics (the Figure 3.3
// view) and per-thread outcomes.
package main

import (
	"fmt"
	"strings"

	"hle"
)

const (
	threads = 8
	budget  = 1_500_000
	slots   = 40
)

func main() {
	for _, withSCM := range []bool{false, true} {
		name := "plain HLE (MCS lock)"
		if withSCM {
			name = "HLE-SCM (MCS main + MCS aux)"
		}
		fmt.Printf("=== %s ===\n", name)
		run(withSCM)
		fmt.Println()
	}
}

func run(withSCM bool) {
	sys := hle.NewSystem(threads, hle.WithSeed(11))
	var scheme hle.Scheme
	var shared hle.Addr
	var private [threads]hle.Addr
	sys.Init(func(t *hle.Thread) {
		main := hle.NewMCSLock(t)
		if withSCM {
			scheme = hle.Elide(main, hle.WithSCM(hle.NewMCSLock(t)))
		} else {
			scheme = hle.Elide(main)
		}
		shared = t.AllocLines(1)
		for i := range private {
			private[i] = t.AllocLines(1)
		}
	})

	// Per-slot completion counts, bucketed by virtual time. Shared plain
	// Go state is safe: simulated execution is token-serialized.
	slotOps := make([]int, slots+1)
	slotNonSpec := make([]int, slots+1)

	sys.Parallel(threads, func(t *hle.Thread) {
		scheme.Setup(t)
		conflicting := t.ID < 2
		for t.Clock() < budget {
			cell := private[t.ID]
			if conflicting {
				cell = shared
			}
			r := scheme.Run(t, func() {
				v := t.Load(cell)
				t.Work(12)
				t.Store(cell, v+1)
			})
			slot := int(t.Clock() * slots / budget)
			if slot > slots {
				slot = slots
			}
			slotOps[slot]++
			if !r.Spec {
				slotNonSpec[slot]++
			}
		}
	})

	// Render the serialization dynamics as a strip chart.
	fmt.Println("non-speculative fraction per time slot (.:0%  ▁▂▃▄▅▆▇█:100%):")
	var b strings.Builder
	levels := []rune("▁▂▃▄▅▆▇█")
	for s := 0; s < slots; s++ {
		if slotOps[s] == 0 {
			b.WriteRune(' ')
			continue
		}
		f := float64(slotNonSpec[s]) / float64(slotOps[s])
		if f < 0.01 {
			b.WriteRune('.')
			continue
		}
		idx := int(f * float64(len(levels)-1))
		b.WriteRune(levels[idx])
	}
	fmt.Printf("  [%s]\n", b.String())

	st := scheme.TotalStats()
	fmt.Printf("total ops %d, attempts/op %.2f, non-speculative fraction %.3f\n",
		st.Ops, st.AttemptsPerOp(), st.NonSpecFraction())
	var innocent hle.OpStats
	for id := 2; id < threads; id++ {
		innocent.Add(scheme.Stats(id))
	}
	fmt.Printf("innocent threads (2-7): non-speculative fraction %.3f  <- the avalanche's collateral damage\n",
		innocent.NonSpecFraction())
}
