// fairlocks: Chapter 6 in action. The classic ticket and CLH locks cannot
// be elided — their release does not restore the lock word, so HLE's
// XRELEASE check would abort every transaction — while the paper's adjusted
// versions elide cleanly and keep their fairness on the non-speculative
// path.
//
// The example shows (1) elision success rates for all four locks plus MCS,
// and (2) that under the adjusted locks a burst of non-speculative
// acquisitions is still served FIFO.
package main

import (
	"fmt"

	"hle"
)

func main() {
	const threads = 8
	const opsPerThread = 1000

	fmt.Printf("%-10s %14s %14s %12s\n", "lock", "spec ops", "non-spec ops", "spec frac")
	for _, mk := range []struct {
		name  string
		build func(t *hle.Thread) hle.Lock
	}{
		{"MCS", hle.NewMCSLock},
		{"Ticket", hle.NewTicketLock},
		{"AdjTicket", hle.NewAdjustedTicketLock},
		{"CLH", hle.NewCLHLock},
		{"AdjCLH", hle.NewAdjustedCLHLock},
	} {
		sys := hle.NewSystem(threads, hle.WithSeed(5))
		var scheme hle.Scheme
		var cells [threads]hle.Addr
		sys.Init(func(t *hle.Thread) {
			scheme = hle.Elide(mk.build(t))
			for i := range cells {
				cells[i] = t.AllocLines(1)
			}
		})
		// Disjoint per-thread data: a perfectly elidable workload.
		sys.Parallel(threads, func(t *hle.Thread) {
			scheme.Setup(t)
			for i := 0; i < opsPerThread; i++ {
				scheme.Run(t, func() {
					v := t.Load(cells[t.ID])
					t.Work(5)
					t.Store(cells[t.ID], v+1)
				})
			}
		})
		st := scheme.TotalStats()
		fmt.Printf("%-10s %14d %14d %11.1f%%\n",
			mk.name, st.Spec, st.NonSpec, 100*float64(st.Spec)/float64(st.Ops))
	}

	fmt.Println("\nFIFO order under the adjusted ticket lock (staggered arrivals):")
	sys := hle.NewSystem(4, hle.WithSeed(9))
	var lock hle.Lock
	sys.Init(func(t *hle.Thread) { lock = hle.NewAdjustedTicketLock(t) })
	var service []int
	sys.Parallel(4, func(t *hle.Thread) {
		lock.Prepare(t)
		t.Work(uint64(t.ID) * 2000) // arrive in ID order
		lock.Acquire(t)
		service = append(service, t.ID)
		t.Work(10_000) // hold long enough that everyone queues
		lock.Release(t)
	})
	fmt.Printf("service order: %v (arrival order was [0 1 2 3])\n", service)
}
