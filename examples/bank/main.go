// bank: concurrent money transfers between accounts under one
// coarse-grained elided lock — the classic atomicity demo. Every transfer
// must move value exactly (conservation), and an audit critical section
// sums all accounts concurrently with the transfers; with a correct scheme
// every audit observes the exact total.
//
// The example also shows failure visibility: run with -scheme NoLock to
// watch conservation break (the simulator faithfully loses updates without
// synchronization).
package main

import (
	"flag"
	"fmt"
	"os"

	"hle"
)

func main() {
	schemeName := flag.String("scheme", "HLE-SCM", "NoLock, Standard, HLE, HLE-SCM, Opt-SLR")
	flag.Parse()

	const (
		threads  = 8
		accounts = 64
		initial  = 1000
		ops      = 1500
	)

	sys := hle.NewSystem(threads, hle.WithSeed(2))
	var scheme hle.Scheme
	var acct hle.Addr
	sys.Init(func(t *hle.Thread) {
		lock := hle.NewMCSLock(t)
		switch *schemeName {
		case "NoLock":
			scheme = hle.Standard(lock) // replaced below per-op; see audit
		case "Standard":
			scheme = hle.Standard(lock)
		case "HLE":
			scheme = hle.Elide(lock)
		case "HLE-SCM":
			scheme = hle.Elide(lock, hle.WithSCM(hle.NewMCSLock(t)))
		case "Opt-SLR":
			scheme = hle.Removal(lock)
		default:
			fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schemeName)
			os.Exit(1)
		}
		acct = t.Alloc(accounts)
		for i := 0; i < accounts; i++ {
			t.Store(acct+hle.Addr(i), initial)
		}
	})

	noLock := *schemeName == "NoLock"
	run := func(t *hle.Thread, cs func()) {
		if noLock {
			cs()
			return
		}
		scheme.Run(t, cs)
	}

	badAudits := 0
	audits := 0
	sys.Parallel(threads, func(t *hle.Thread) {
		scheme.Setup(t)
		for i := 0; i < ops; i++ {
			if t.ID == 0 && i%20 == 0 {
				// Auditor: sum all accounts in one critical section.
				var sum uint64
				run(t, func() {
					sum = 0
					for a := 0; a < accounts; a++ {
						sum += t.Load(acct + hle.Addr(a))
					}
				})
				audits++
				if sum != accounts*initial {
					badAudits++
				}
				continue
			}
			from := hle.Addr(t.Rand().Intn(accounts))
			to := hle.Addr(t.Rand().Intn(accounts))
			amount := uint64(t.Rand().Intn(50) + 1)
			run(t, func() {
				balance := t.Load(acct + from)
				if balance < amount {
					return
				}
				t.Store(acct+from, balance-amount)
				t.Work(5)
				t.Store(acct+to, t.Load(acct+to)+amount)
			})
		}
	})

	var total uint64
	sys.Init(func(t *hle.Thread) {
		for a := 0; a < accounts; a++ {
			total += t.Load(acct + hle.Addr(a))
		}
	})

	fmt.Printf("scheme %s: final total = %d (expected %d)\n", *schemeName, total, accounts*initial)
	fmt.Printf("audits: %d, inconsistent: %d\n", audits, badAudits)
	if !noLock {
		st := scheme.TotalStats()
		fmt.Printf("ops %d, attempts/op %.2f, non-speculative %.3f\n",
			st.Ops, st.AttemptsPerOp(), st.NonSpecFraction())
	}
	if total != accounts*initial || badAudits > 0 {
		fmt.Println("CONSERVATION VIOLATED — this is expected only under -scheme NoLock")
		os.Exit(1)
	}
}
