package hle_test

import (
	"bytes"
	"strings"
	"testing"

	"hle"
)

// TestOptionMisusePanics: options passed to constructors that do not
// accept them — whether from another family in the shared Option
// namespace or as a contradictory combination within one constructor —
// are programming errors and fail loudly at construction.
func TestOptionMisusePanics(t *testing.T) {
	cases := []struct {
		name  string
		build func(th *hle.Thread)
	}{
		// Scheme options into the wrong scheme constructor.
		{"Elide+Pessimistic", func(th *hle.Thread) {
			hle.Elide(hle.NewTTASLock(th), hle.Pessimistic())
		}},
		{"Elide+MaxAttempts", func(th *hle.Thread) {
			hle.Elide(hle.NewTTASLock(th), hle.MaxAttempts(3))
		}},
		{"Elide+AdaptiveTuning", func(th *hle.Thread) {
			hle.Elide(hle.NewTTASLock(th), hle.WithAdaptiveTuning(hle.AdaptiveConfig{}))
		}},
		// Cross-family misuse: the shared namespace compiles these, the
		// constructor rejects them by name.
		{"NewSystem+WithSCM", func(th *hle.Thread) {
			hle.NewSystem(2, hle.WithSCM(hle.NewMCSLock(th)))
		}},
		{"Elide+WithSeed", func(th *hle.Thread) {
			hle.Elide(hle.NewTTASLock(th), hle.WithSeed(7))
		}},
		{"Elide+WithPlacement", func(th *hle.Thread) {
			hle.Elide(hle.NewTTASLock(th), hle.WithPlacement(hle.Padded))
		}},
		{"Sharded+WithSCM", func(th *hle.Thread) {
			hle.Sharded(th, 4, hle.WithSCM(hle.NewMCSLock(th)))
		}},
		{"NewSystem+WithShardStripes", func(th *hle.Thread) {
			hle.NewSystem(2, hle.WithShardStripes(4))
		}},
		{"ZeroOption", func(th *hle.Thread) {
			hle.Elide(hle.NewTTASLock(th), hle.Option{})
		}},
		// WithSubscription is an Elide-only option.
		{"Removal+WithSubscription", func(th *hle.Thread) {
			hle.Removal(hle.NewTTASLock(th), hle.WithSubscription(hle.Lazy))
		}},
		{"Adaptive+WithSubscription", func(th *hle.Thread) {
			hle.Adaptive(hle.NewMCSLock(th), hle.WithSCM(hle.NewMCSLock(th)),
				hle.WithSubscription(hle.Lazy))
		}},
		{"NewSystem+WithSubscription", func(th *hle.Thread) {
			hle.NewSystem(2, hle.WithSubscription(hle.Lazy))
		}},
		{"WithSubscription+Unknown", func(th *hle.Thread) {
			hle.WithSubscription(hle.Subscription(42))
		}},
		// Contradictory combinations within one constructor.
		{"TuningWithoutSCM", func(th *hle.Thread) {
			hle.Elide(hle.NewTTASLock(th), hle.WithSCMTuning(hle.SCMConfig{MaxRetries: 3}))
		}},
		{"LazySubscription+SCM", func(th *hle.Thread) {
			hle.Elide(hle.NewTTASLock(th), hle.WithSCM(hle.NewMCSLock(th)),
				hle.WithSubscription(hle.Lazy))
		}},
		{"RemovalSCM+MaxAttempts", func(th *hle.Thread) {
			hle.Removal(hle.NewTTASLock(th), hle.WithSCM(hle.NewMCSLock(th)), hle.MaxAttempts(3))
		}},
		{"Pessimistic+ManyAttempts", func(th *hle.Thread) {
			hle.Removal(hle.NewTTASLock(th), hle.Pessimistic(), hle.MaxAttempts(5))
		}},
		{"Sharded+TwoSchemeSelectors", func(th *hle.Thread) {
			hle.Sharded(th, 4,
				hle.WithShardSchemeName("HLE"),
				hle.WithShardScheme(func(t *hle.Thread, main hle.Lock, si int) hle.Scheme {
					return hle.Standard(main)
				}))
		}},
		{"Sharded+ZeroShards", func(th *hle.Thread) {
			hle.Sharded(th, 0)
		}},
		{"WithPlacement+Unknown", func(th *hle.Thread) {
			hle.WithPlacement(hle.Placement(42))
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			sys := hle.NewSystem(1, hle.WithSeed(1))
			defer func() {
				if recover() == nil {
					t.Fatal("expected construction panic")
				}
			}()
			sys.Init(c.build)
		})
	}
}

// TestMisusePanicNamesConstructors: the misuse panic must tell the user
// which constructors do accept the option, so the fix is in the message.
func TestMisusePanicNamesConstructors(t *testing.T) {
	sys := hle.NewSystem(1, hle.WithSeed(1))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected construction panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		for _, want := range []string{"NewSystem", "WithSCM", "Elide/Removal/Adaptive"} {
			if !strings.Contains(msg, want) {
				t.Errorf("panic %q does not mention %q", msg, want)
			}
		}
	}()
	sys.Init(func(th *hle.Thread) {
		hle.NewSystem(2, hle.WithSCM(hle.NewMCSLock(th)))
	})
}

// profiledContention runs a contended counter on a profiling system and
// returns the profile.
func profiledContention(seed int64) *hle.Profile {
	sys := hle.NewSystem(4, hle.WithSeed(seed), hle.WithProfiling(hle.ProfileOptions{}))
	var counter hle.Addr
	var scheme hle.Scheme
	sys.Init(func(th *hle.Thread) {
		counter = th.AllocLines(1)
		scheme = hle.Elide(hle.NewTTASLock(th))
	})
	sys.Parallel(4, func(th *hle.Thread) {
		scheme.Setup(th)
		for i := 0; i < 200; i++ {
			scheme.Run(th, func() {
				th.Store(counter, th.Load(counter)+1)
			})
		}
	})
	return sys.Profile()
}

// TestProfilingOption wires WithProfiling end to end: the profile is
// delivered, attributes every abort to exactly one cause, and is
// byte-identical across identically-seeded systems.
func TestProfilingOption(t *testing.T) {
	p := profiledContention(23)
	if p == nil {
		t.Fatal("Profile() returned nil on a profiling system")
	}
	if p.TotalAborts == 0 {
		t.Fatal("contended elision recorded no aborts")
	}
	if sum := p.CauseSum(); sum != p.TotalAborts {
		t.Fatalf("cause sum %d != total aborts %d", sum, p.TotalAborts)
	}
	if q := profiledContention(23); !bytes.Equal(p.JSON(), q.JSON()) {
		t.Fatal("equal seeds produced different profile JSON")
	}

	// A system built without WithProfiling reports no profile.
	plain := hle.NewSystem(2, hle.WithSeed(23))
	if plain.Profile() != nil {
		t.Fatal("Profile() non-nil without WithProfiling")
	}
}

// TestChaosFacade drives the re-exported fault-injection surface: a
// deterministic schedule, an engine installed at construction, faults
// counted, and the profiler classifying the injected aborts separately
// from organic spurious ones.
func TestChaosFacade(t *testing.T) {
	schedule := hle.RandomFaultSchedule(9, 2, 50_000, 6)
	if len(schedule) != 6 {
		t.Fatalf("schedule has %d faults, want 6", len(schedule))
	}
	if again := hle.RandomFaultSchedule(9, 2, 50_000, 6); len(again) != len(schedule) {
		t.Fatal("RandomFaultSchedule nondeterministic")
	}
	engine := hle.NewChaosEngine(schedule...)
	sys := hle.NewSystem(2,
		hle.WithSeed(9),
		hle.WithProfiling(hle.ProfileOptions{}),
		hle.WithFaultInjection(engine),
	)
	var counter hle.Addr
	var scheme hle.Scheme
	sys.Init(func(th *hle.Thread) {
		counter = th.AllocLines(1)
		scheme = hle.Elide(hle.NewMCSLock(th), hle.WithSCM(hle.NewMCSLock(th)))
	})
	sys.Parallel(2, func(th *hle.Thread) {
		scheme.Setup(th)
		for i := 0; i < 400; i++ {
			scheme.Run(th, func() {
				th.Store(counter, th.Load(counter)+1)
			})
		}
	})
	n := engine.Counters()
	if n.Aborts+n.Stalls+n.Squeezes+n.Skews == 0 {
		t.Fatal("chaos engine delivered no faults")
	}
	p := sys.Profile()
	if p == nil {
		t.Fatal("no profile")
	}
	if sum := p.CauseSum(); sum != p.TotalAborts {
		t.Fatalf("cause sum %d != total aborts %d under injection", sum, p.TotalAborts)
	}

	// The watchdog constructor is reachable and arms cleanly.
	wd := hle.NewWatchdog(hle.WatchdogConfig{LivelockWindow: 1 << 20}, 2)
	if wd == nil {
		t.Fatal("NewWatchdog returned nil")
	}
}
