package hle_test

import (
	"bytes"
	"testing"

	"hle"
)

// runCounter drives one counter workload under the scheme mk builds and
// returns its operation statistics; identical seeds and schemes must give
// identical stats.
func runCounter(seed int64, mk func(t *hle.Thread) hle.Scheme) (string, hle.OpStats) {
	sys := hle.NewSystem(4, hle.WithSeed(seed))
	var counter hle.Addr
	var scheme hle.Scheme
	sys.Init(func(th *hle.Thread) {
		counter = th.AllocLines(1)
		scheme = mk(th)
	})
	sys.Parallel(4, func(th *hle.Thread) {
		scheme.Setup(th)
		for i := 0; i < 150; i++ {
			scheme.Run(th, func() {
				v := th.Load(counter)
				th.Work(2)
				th.Store(counter, v+1)
			})
		}
	})
	return scheme.Name(), scheme.TotalStats()
}

// TestDeprecatedConstructorsEquivalent: every deprecated constructor and
// its option-based replacement build schemes that run identically — same
// name, same statistics on the same seeded machine.
func TestDeprecatedConstructorsEquivalent(t *testing.T) {
	aux := func(th *hle.Thread) hle.Lock { return hle.NewMCSLock(th) }
	pairs := []struct {
		name     string
		old, new func(th *hle.Thread) hle.Scheme
	}{
		{"ElideWithSCM",
			func(th *hle.Thread) hle.Scheme { return hle.ElideWithSCM(hle.NewTTASLock(th), aux(th)) },
			func(th *hle.Thread) hle.Scheme { return hle.Elide(hle.NewTTASLock(th), hle.WithSCM(aux(th))) }},
		{"ElideWithSCMConfig",
			func(th *hle.Thread) hle.Scheme {
				return hle.ElideWithSCMConfig(hle.NewMCSLock(th), aux(th), hle.SCMConfig{MaxRetries: 3})
			},
			func(th *hle.Thread) hle.Scheme {
				return hle.Elide(hle.NewMCSLock(th), hle.WithSCM(aux(th)),
					hle.WithSCMTuning(hle.SCMConfig{MaxRetries: 3}))
			}},
		{"LockRemoval",
			func(th *hle.Thread) hle.Scheme { return hle.LockRemoval(hle.NewTTASLock(th), 5) },
			func(th *hle.Thread) hle.Scheme { return hle.Removal(hle.NewTTASLock(th), hle.MaxAttempts(5)) }},
		{"LockRemoval-default",
			func(th *hle.Thread) hle.Scheme { return hle.LockRemoval(hle.NewTTASLock(th), 0) },
			func(th *hle.Thread) hle.Scheme { return hle.Removal(hle.NewTTASLock(th)) }},
		{"PessimisticLockRemoval",
			func(th *hle.Thread) hle.Scheme { return hle.PessimisticLockRemoval(hle.NewTTASLock(th)) },
			func(th *hle.Thread) hle.Scheme { return hle.Removal(hle.NewTTASLock(th), hle.Pessimistic()) }},
		{"LockRemovalWithSCM",
			func(th *hle.Thread) hle.Scheme { return hle.LockRemovalWithSCM(hle.NewTTASLock(th), aux(th)) },
			func(th *hle.Thread) hle.Scheme { return hle.Removal(hle.NewTTASLock(th), hle.WithSCM(aux(th))) }},
	}
	for _, p := range pairs {
		p := p
		t.Run(p.name, func(t *testing.T) {
			oldName, oldStats := runCounter(17, p.old)
			newName, newStats := runCounter(17, p.new)
			if oldName != newName {
				t.Fatalf("names differ: %q (deprecated) vs %q (options)", oldName, newName)
			}
			if oldStats != newStats {
				t.Fatalf("stats differ:\n  deprecated %+v\n  options    %+v", oldStats, newStats)
			}
		})
	}
}

// TestOptionMisusePanics: inapplicable option combinations are programming
// errors and fail loudly at construction.
func TestOptionMisusePanics(t *testing.T) {
	cases := []struct {
		name  string
		build func(th *hle.Thread)
	}{
		{"Elide+Pessimistic", func(th *hle.Thread) {
			hle.Elide(hle.NewTTASLock(th), hle.Pessimistic())
		}},
		{"Elide+MaxAttempts", func(th *hle.Thread) {
			hle.Elide(hle.NewTTASLock(th), hle.MaxAttempts(3))
		}},
		{"TuningWithoutSCM", func(th *hle.Thread) {
			hle.Elide(hle.NewTTASLock(th), hle.WithSCMTuning(hle.SCMConfig{MaxRetries: 3}))
		}},
		{"RemovalSCM+MaxAttempts", func(th *hle.Thread) {
			hle.Removal(hle.NewTTASLock(th), hle.WithSCM(hle.NewMCSLock(th)), hle.MaxAttempts(3))
		}},
		{"Pessimistic+ManyAttempts", func(th *hle.Thread) {
			hle.Removal(hle.NewTTASLock(th), hle.Pessimistic(), hle.MaxAttempts(5))
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			sys := hle.NewSystem(1, hle.WithSeed(1))
			defer func() {
				if recover() == nil {
					t.Fatal("expected construction panic")
				}
			}()
			sys.Init(c.build)
		})
	}
}

// profiledContention runs a contended counter on a profiling system and
// returns the profile.
func profiledContention(seed int64) *hle.Profile {
	sys := hle.NewSystem(4, hle.WithSeed(seed), hle.WithProfiling(hle.ProfileOptions{}))
	var counter hle.Addr
	var scheme hle.Scheme
	sys.Init(func(th *hle.Thread) {
		counter = th.AllocLines(1)
		scheme = hle.Elide(hle.NewTTASLock(th))
	})
	sys.Parallel(4, func(th *hle.Thread) {
		scheme.Setup(th)
		for i := 0; i < 200; i++ {
			scheme.Run(th, func() {
				th.Store(counter, th.Load(counter)+1)
			})
		}
	})
	return sys.Profile()
}

// TestProfilingOption wires WithProfiling end to end: the profile is
// delivered, attributes every abort to exactly one cause, and is
// byte-identical across identically-seeded systems.
func TestProfilingOption(t *testing.T) {
	p := profiledContention(23)
	if p == nil {
		t.Fatal("Profile() returned nil on a profiling system")
	}
	if p.TotalAborts == 0 {
		t.Fatal("contended elision recorded no aborts")
	}
	if sum := p.CauseSum(); sum != p.TotalAborts {
		t.Fatalf("cause sum %d != total aborts %d", sum, p.TotalAborts)
	}
	if q := profiledContention(23); !bytes.Equal(p.JSON(), q.JSON()) {
		t.Fatal("equal seeds produced different profile JSON")
	}

	// A system built without WithProfiling reports no profile.
	plain := hle.NewSystem(2, hle.WithSeed(23))
	if plain.Profile() != nil {
		t.Fatal("Profile() non-nil without WithProfiling")
	}
}

// TestChaosFacade drives the re-exported fault-injection surface: a
// deterministic schedule, an engine installed at construction, faults
// counted, and the profiler classifying the injected aborts separately
// from organic spurious ones.
func TestChaosFacade(t *testing.T) {
	schedule := hle.RandomFaultSchedule(9, 2, 50_000, 6)
	if len(schedule) != 6 {
		t.Fatalf("schedule has %d faults, want 6", len(schedule))
	}
	if again := hle.RandomFaultSchedule(9, 2, 50_000, 6); len(again) != len(schedule) {
		t.Fatal("RandomFaultSchedule nondeterministic")
	}
	engine := hle.NewChaosEngine(schedule...)
	sys := hle.NewSystem(2,
		hle.WithSeed(9),
		hle.WithProfiling(hle.ProfileOptions{}),
		hle.WithFaultInjection(engine),
	)
	var counter hle.Addr
	var scheme hle.Scheme
	sys.Init(func(th *hle.Thread) {
		counter = th.AllocLines(1)
		scheme = hle.Elide(hle.NewMCSLock(th), hle.WithSCM(hle.NewMCSLock(th)))
	})
	sys.Parallel(2, func(th *hle.Thread) {
		scheme.Setup(th)
		for i := 0; i < 400; i++ {
			scheme.Run(th, func() {
				th.Store(counter, th.Load(counter)+1)
			})
		}
	})
	n := engine.Counters()
	if n.Aborts+n.Stalls+n.Squeezes+n.Skews == 0 {
		t.Fatal("chaos engine delivered no faults")
	}
	p := sys.Profile()
	if p == nil {
		t.Fatal("no profile")
	}
	if sum := p.CauseSum(); sum != p.TotalAborts {
		t.Fatalf("cause sum %d != total aborts %d under injection", sum, p.TotalAborts)
	}

	// The watchdog constructor is reachable and arms cleanly.
	wd := hle.NewWatchdog(hle.WatchdogConfig{LivelockWindow: 1 << 20}, 2)
	if wd == nil {
		t.Fatal("NewWatchdog returned nil")
	}
}
