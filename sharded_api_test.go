package hle_test

import (
	"testing"

	"hle"
)

// TestShardedBasics drives the sharded store's full public surface on one
// thread: routing, Get/Put/Delete semantics (Put updates an existing
// key's value in place), and the consistent cross-shard Size.
func TestShardedBasics(t *testing.T) {
	sys := hle.NewSystem(1, hle.WithSeed(5), hle.WithMemory(1<<17))
	var s *hle.ShardedStore
	sys.Init(func(th *hle.Thread) {
		s = hle.Sharded(th, 8)
	})
	sys.Parallel(1, func(th *hle.Thread) {
		s.Setup(th)
		if s.Shards() != 8 {
			t.Errorf("Shards() = %d, want 8", s.Shards())
		}
		for k := uint64(0); k < 100; k++ {
			if !s.Put(th, k, k*10) {
				t.Fatalf("Put(%d) reported key present in empty store", k)
			}
		}
		if n := s.Size(th); n != 100 {
			t.Fatalf("Size = %d, want 100", n)
		}
		if v, ok := s.Get(th, 42); !ok || v != 420 {
			t.Fatalf("Get(42) = %d,%v, want 420,true", v, ok)
		}
		if s.Put(th, 42, 7) {
			t.Fatal("Put on existing key reported insertion")
		}
		if v, _ := s.Get(th, 42); v != 7 {
			t.Fatalf("Put did not update in place: Get(42) = %d, want 7", v)
		}
		if !s.Delete(th, 42) || s.Delete(th, 42) {
			t.Fatal("Delete semantics wrong on present/absent key")
		}
		if _, ok := s.Get(th, 42); ok {
			t.Fatal("Get found a deleted key")
		}
		if n := s.Size(th); n != 99 {
			t.Fatalf("Size = %d after delete, want 99", n)
		}
	})
	if ops := s.TotalStats().Ops; ops == 0 {
		t.Error("TotalStats counted no operations")
	}
}

// TestShardedOptions exercises the option surface: hash-table backend,
// identity routing hash, custom stripes, a custom lock, and per-shard
// adaptive schemes via both the name and the constructor option.
func TestShardedOptions(t *testing.T) {
	sys := hle.NewSystem(2, hle.WithSeed(6), hle.WithMemory(1<<18))
	var byName, byMk *hle.ShardedStore
	sys.Init(func(th *hle.Thread) {
		byName = hle.Sharded(th, 4,
			hle.WithShardHashTable(32),
			hle.WithShardHash(func(k uint64) uint64 { return k }),
			hle.WithShardStripes(4),
			hle.WithShardSchemeName("Adaptive"),
		)
		byMk = hle.Sharded(th, 4,
			hle.WithShardLock(func(t *hle.Thread) hle.Lock { return hle.NewTTASLock(t) }),
			hle.WithShardScheme(func(t *hle.Thread, main hle.Lock, si int) hle.Scheme {
				return hle.Elide(main, hle.WithSCM(hle.NewMCSLock(t)))
			}),
		)
	})
	for k := uint64(0); k < 16; k++ {
		if got, want := byName.ShardOf(k), int(k%4); got != want {
			t.Fatalf("identity hash: key %d routed to shard %d, want %d", k, got, want)
		}
	}
	sys.Parallel(2, func(th *hle.Thread) {
		byName.Setup(th)
		byMk.Setup(th)
		for i := 0; i < 200; i++ {
			key := uint64(th.ID*1000 + i)
			byName.Put(th, key, key)
			byMk.Put(th, key, key)
		}
	})
	sys.Init(func(th *hle.Thread) {
		if n := byName.Size(th); n != 400 {
			t.Errorf("byName Size = %d, want 400", n)
		}
		if n := byMk.Size(th); n != 400 {
			t.Errorf("byMk Size = %d, want 400", n)
		}
	})
}

// TestShardedUnknownSchemePanics: a bad scheme name is a programming
// error and fails at option construction.
func TestShardedUnknownSchemePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown scheme name")
		}
	}()
	hle.WithShardSchemeName("nope")
}

// TestShardedConcurrent runs 4 threads over disjoint key ranges and
// checks nothing is lost: sharded elision must preserve every insert.
func TestShardedConcurrent(t *testing.T) {
	sys := hle.NewSystem(4, hle.WithSeed(7), hle.WithMemory(1<<18))
	var s *hle.ShardedStore
	sys.Init(func(th *hle.Thread) {
		s = hle.Sharded(th, 8, hle.WithShardSchemeName("HLE-SCM"))
	})
	const perThread = 300
	sys.Parallel(4, func(th *hle.Thread) {
		s.Setup(th)
		base := uint64(th.ID) * perThread
		for i := uint64(0); i < perThread; i++ {
			if !s.Put(th, base+i, base+i) {
				t.Errorf("thread %d: Put(%d) saw existing key", th.ID, base+i)
				return
			}
		}
	})
	sys.Init(func(th *hle.Thread) {
		if n := s.Size(th); n != 4*perThread {
			t.Errorf("Size = %d, want %d", n, 4*perThread)
		}
		for k := uint64(0); k < 4*perThread; k++ {
			if v, ok := s.Get(th, k); !ok || v != k {
				t.Errorf("Get(%d) = %d,%v after concurrent fill", k, v, ok)
				return
			}
		}
	})
}
