#!/bin/sh
# Tier-1 verification: build, vet, full test suite, then the race detector
# over the host-parallel machinery (the pool, machine clone/snapshot, and
# allocator free lists are the only code that runs on concurrent host
# goroutines). Explicit -timeout: the liveness watchdogs turn simulated
# hangs into structured failures, so a genuinely hung test is a bug worth
# a bounded wait, not go test's default 10 minutes per package.
set -eux

go build ./...
go vet ./...
go test -timeout 300s ./...
go test -race -timeout 300s ./internal/harness/... ./internal/tsx/... ./internal/mem/...
# The profiler is handed across host goroutines by the parallel runner, so
# its suite runs under the race detector too.
go test -race -count=1 -timeout 300s ./internal/obs
