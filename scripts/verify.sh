#!/bin/sh
# Tier-1 verification: build, vet, full test suite, then the race detector
# over the host-parallel machinery (the pool, machine clone/snapshot, and
# allocator free lists are the only code that runs on concurrent host
# goroutines). Explicit -timeout: the liveness watchdogs turn simulated
# hangs into structured failures, so a genuinely hung test is a bug worth
# a bounded wait, not go test's default 10 minutes per package.
set -eux

go build ./...
go vet ./...
go test -timeout 300s ./...
go test -race -timeout 300s ./internal/harness/... ./internal/tsx/... ./internal/mem/...
# The profiler is handed across host goroutines by the parallel runner, so
# its suite runs under the race detector too — and the adaptive controller
# rides the profiler's windowed feed, so it gets the same treatment.
go test -race -count=1 -timeout 300s ./internal/obs ./internal/adapt
# Storm-recovery soak, quick tier: the adaptive controller demoted by an
# injected abort storm must re-promote within its window bounds, without
# flapping, and stay serializable across every hot swap.
go test -count=1 -timeout 300s -run 'TestStormRecoveryMatrix|TestStormRecoveryDeterministic' -short ./internal/chaos
# The explorer fans its frontier across host workers; run its suite under
# the race detector too, but -short (the quick battery alone — the race
# detector is ~10x, so the deeper two-op configurations stay in plain mode).
go test -race -short -count=1 -timeout 600s ./internal/explore
# Checkpoint-fork differential: chained (forking) exploration must match
# scratch replay bit for bit, and deliberately staled banked outcomes must
# be caught by the fork validator.
go test -count=1 -timeout 300s -run 'TestChainMatchesScratch|TestValidateForksClean|TestStaleBankCaught' ./internal/explore
# Checkpoint/fork fuzz smoke: replays the checked-in corpus (seed inputs
# plus interesting cases the fuzzer found), comparing forked children
# against scratch executions.
go test -count=1 -timeout 300s -run 'FuzzCheckpointFork|TestSoakForkMatchesScratch' ./internal/tsx ./internal/chaos
# Capped-depth model-checking smoke: every scheme x sweep lock at two
# threads x one op with a small replay budget — under a minute, and it
# exercises the whole replay/branch/check loop through the CLI entry point.
# -explore-guard fails the run if the sweep takes more than twice the
# quick-tier wall clock recorded in BENCH_explore.json.
go run ./cmd/hle-bench -explore -quick -parallel 2 -explore-guard BENCH_explore.json > /dev/null
# Sharded store and traffic generator under the race detector: per-point
# store construction (Bind after a checkpoint fork) and the workload's
# Go-side tables are shared across host workers by the parallel runner.
go test -race -count=1 -timeout 300s ./internal/shard ./internal/traffic
# Lazy lock subscription under the race detector: the ext-lazy sweep fans
# per-point machines running the lazy commit pipeline (the one tsx commit
# path that is NOT atomic — it yields mid-commit) across host workers, and
# the chaos differential forks eager and fixed-lazy soaks from one shared
# tree image. The naive-hazard reproductions themselves already run under
# -race via the explore suite above. FuzzLazySubscription's corpus replay
# (including the fuzzer-found duplicate-update witness) rides the lazy
# test filter in internal/core.
go test -race -count=1 -timeout 300s -run 'TestExtLazyCapacityAsymmetry' ./internal/figures
go test -race -count=1 -timeout 300s -run 'Lazy' -short ./internal/core ./internal/chaos
# Sharded sweep, quick tier: regenerates the ext-shard figure through the
# CLI, checks the wall clock against the quick-tier record in
# BENCH_shard.json (>2x fails), and leaves the tables out of the way.
go run ./cmd/hle-bench -shard-bench /tmp/shard-bench.json -quick -shard-guard BENCH_shard.json > /dev/null
# Placement sweep, quick tier: regenerates the ext-place figure (all four
# placement policies plus the heatmap-driven auto-pad pass) through the
# CLI and checks the wall clock against the quick-tier record in
# BENCH_place.json (>2x fails).
go run ./cmd/hle-bench -place-bench /tmp/place-bench.json -quick -place-guard BENCH_place.json > /dev/null
