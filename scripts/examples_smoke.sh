#!/bin/sh
# Examples smoke: build every example once, then run each and check its
# exit status. The examples are sized to finish in about a second on the
# simulated machine, so no iteration knobs are needed — a non-zero exit
# (panic, serializability violation, watchdog failure) fails the job.
set -eu

cd "$(dirname "$0")/.."

go build ./examples/...

for example in avalanche bank fairlocks kvstore quickstart; do
    echo "==> examples/$example"
    go run "./examples/$example" > /dev/null
done

echo "all examples passed"
