// Package hle is a faithful, simulator-backed reproduction of
// "Programming with Hardware Lock Elision" (Afek, Levy, Morrison;
// PPoPP 2013): hardware lock elision, its avalanche pathology, and the
// paper's software-assisted conflict management (SCM) and lock removal
// (SLR) schemes, together with HLE-compatible fair locks and the Chapter 7
// hardware extension.
//
// Because Go exposes no TSX intrinsics (and post-2021 Intel parts fuse HLE
// off), the package runs on a deterministic, cycle-approximate simulation
// of a Haswell-like multicore: word-addressable memory with 64-byte cache
// lines, per-line transactional read/write sets, requestor-wins conflict
// management, capacity and spurious aborts, and XACQUIRE/XRELEASE and
// XBEGIN/XEND/XABORT semantics. Everything the paper measures — the
// avalanche effect, SCM's rescue, the fair-lock adjustments — emerges from
// those protocol rules rather than being scripted.
//
// # Quick start
//
//	sys := hle.NewSystem(8, hle.WithSeed(42))
//	var lock hle.Lock
//	var counter hle.Addr
//	var scheme hle.Scheme
//	sys.Init(func(t *hle.Thread) {
//		lock = hle.NewMCSLock(t)
//		counter = t.AllocLines(1)
//		scheme = hle.ElideWithSCM(lock, hle.NewMCSLock(t))
//	})
//	sys.Parallel(8, func(t *hle.Thread) {
//		scheme.Setup(t)
//		for i := 0; i < 1000; i++ {
//			scheme.Run(t, func() {
//				t.Store(counter, t.Load(counter)+1)
//			})
//		}
//	})
//
// Critical sections are closures because simulated hardware rollback
// re-executes them; they must touch shared state only through the
// simulated-memory operations on Thread, which are rolled back exactly.
package hle

import (
	"hle/internal/core"
	"hle/internal/hwext"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// Re-exported fundamental types. A Thread is one simulated hardware
// thread; all simulated memory access goes through it. An Addr is a
// simulated memory address (a 64-bit-word index); Addr 0 is nil.
type (
	// Thread is a simulated hardware thread with TSX state.
	Thread = tsx.Thread
	// Addr is a simulated memory address.
	Addr = mem.Addr
	// Lock is a mutual-exclusion lock in simulated memory with standard
	// and speculative (elidable) paths.
	Lock = locks.Lock
	// Scheme executes critical sections over a lock: plain locking,
	// hardware lock elision, SCM, or lock removal.
	Scheme = core.Scheme
	// Result describes how one critical-section execution completed.
	Result = core.Result
	// OpStats aggregates per-operation statistics.
	OpStats = core.OpStats
	// MachineConfig exposes the full simulated-machine configuration
	// for advanced use.
	MachineConfig = tsx.Config
)

// System is a simulated multicore machine with TSX support.
type System struct {
	m *tsx.Machine
}

// SystemOption customizes a System.
type SystemOption func(*tsx.Config)

// WithSeed fixes the random seed; equal seeds give bit-identical runs.
func WithSeed(seed int64) SystemOption {
	return func(c *tsx.Config) { c.Seed = seed }
}

// WithMemory sets the initial simulated memory size in 64-bit words.
func WithMemory(words int) SystemOption {
	return func(c *tsx.Config) { c.MemWords = words }
}

// WithHardwareExtension enables the paper's Chapter 7 proposal:
// lock-line conflicts suspend speculative threads instead of aborting them.
func WithHardwareExtension() SystemOption {
	return func(c *tsx.Config) { c.HWExt = true }
}

// WithNestedElision lets XACQUIRE begin an elision inside an RTM
// transaction (Algorithm 3 verbatim); real Haswell lacks this.
func WithNestedElision() SystemOption {
	return func(c *tsx.Config) { c.NestHLEInRTM = true }
}

// WithConfig applies fn to the underlying machine configuration.
func WithConfig(fn func(*MachineConfig)) SystemOption {
	return func(c *tsx.Config) { fn(c) }
}

// NewSystem creates a simulated machine with the given number of hardware
// threads (the paper's testbed exposes 8).
func NewSystem(threads int, opts ...SystemOption) *System {
	cfg := tsx.DefaultConfig(threads)
	for _, o := range opts {
		o(&cfg)
	}
	return &System{m: tsx.NewMachine(cfg)}
}

// Machine exposes the underlying simulated machine.
func (s *System) Machine() *tsx.Machine { return s.m }

// Init runs f on a single simulated thread, for allocating and populating
// data structures before a parallel phase.
func (s *System) Init(f func(t *Thread)) {
	s.m.RunOne(f)
}

// Parallel simulates n hardware threads running body and returns them
// (each thread's Clock and Stats are inspectable afterwards). Memory
// contents persist across calls.
func (s *System) Parallel(n int, body func(t *Thread)) []*Thread {
	return s.m.Run(n, body)
}

// Lock constructors (Chapter 3 and Chapter 6 algorithms).
var (
	// NewTTASLock is the test-and-test-and-set spinlock (Algorithm 1).
	NewTTASLock = func(t *Thread) Lock { return locks.NewTTAS(t) }
	// NewMCSLock is the MCS queue lock (Algorithm 2), the fair lock
	// that is HLE-compatible as-is.
	NewMCSLock = func(t *Thread) Lock { return locks.NewMCS(t) }
	// NewTicketLock is the classic ticket lock (Algorithm 4); it cannot
	// be elided (its speculative path falls back to standard locking).
	NewTicketLock = func(t *Thread) Lock { return locks.NewTicket(t) }
	// NewAdjustedTicketLock is the paper's HLE-compatible ticket lock
	// (Algorithm 5).
	NewAdjustedTicketLock = func(t *Thread) Lock { return locks.NewAdjustedTicket(t) }
	// NewCLHLock is the CLH queue lock (Algorithm 6); not elidable.
	NewCLHLock = func(t *Thread) Lock { return locks.NewCLH(t) }
	// NewAdjustedCLHLock is the paper's HLE-compatible CLH lock
	// (Algorithm 7).
	NewAdjustedCLHLock = func(t *Thread) Lock { return locks.NewAdjustedCLH(t) }
)

// Standard wraps lock in plain, non-speculative locking.
func Standard(lock Lock) Scheme { return core.NewStandard(lock) }

// Elide wraps lock in Haswell-style hardware lock elision (Figure 1.1).
// It is subject to the Chapter 3 avalanche effect under conflicts.
func Elide(lock Lock) Scheme { return core.NewHLE(lock) }

// ElideWithSCM wraps lock in HLE with software-assisted conflict
// management (Algorithm 3): aborted threads serialize on aux — which the
// paper requires to be starvation-free, e.g. an MCS lock — and rejoin the
// speculative run, so non-conflicting threads keep speculating.
func ElideWithSCM(lock, aux Lock) Scheme {
	return core.NewHLESCM(lock, aux, core.SCMConfig{})
}

// ElideWithSCMConfig is ElideWithSCM with explicit tuning.
func ElideWithSCMConfig(lock, aux Lock, cfg core.SCMConfig) Scheme {
	return core.NewHLESCM(lock, aux, cfg)
}

// SCMConfig tunes software-assisted conflict management.
type SCMConfig = core.SCMConfig

// LockRemoval wraps lock in optimistic software lock removal: the critical
// section runs transactionally without reading the lock until commit time,
// retrying up to maxAttempts times (0 selects the paper's 10) before
// falling back to the lock.
func LockRemoval(lock Lock, maxAttempts int) Scheme {
	return core.NewSLR(lock, maxAttempts)
}

// PessimisticLockRemoval gives up after a single speculative failure.
func PessimisticLockRemoval(lock Lock) Scheme {
	return core.NewPessimisticSLR(lock)
}

// LockRemovalWithSCM applies conflict management to lock removal.
func LockRemovalWithSCM(lock, aux Lock) Scheme {
	return core.NewSLRSCM(lock, aux, core.SCMConfig{})
}

// ElideWithHardwareExtension pairs with WithHardwareExtension: plain HLE
// on a machine whose conflict detection distinguishes the lock line from
// data lines (Chapter 7).
func ElideWithHardwareExtension(lock Lock) Scheme {
	return hwext.New(lock)
}
