// Package hle is a faithful, simulator-backed reproduction of
// "Programming with Hardware Lock Elision" (Afek, Levy, Morrison;
// PPoPP 2013): hardware lock elision, its avalanche pathology, and the
// paper's software-assisted conflict management (SCM) and lock removal
// (SLR) schemes, together with HLE-compatible fair locks and the Chapter 7
// hardware extension.
//
// Because Go exposes no TSX intrinsics (and post-2021 Intel parts fuse HLE
// off), the package runs on a deterministic, cycle-approximate simulation
// of a Haswell-like multicore: word-addressable memory with 64-byte cache
// lines, per-line transactional read/write sets, requestor-wins conflict
// management, capacity and spurious aborts, and XACQUIRE/XRELEASE and
// XBEGIN/XEND/XABORT semantics. Everything the paper measures — the
// avalanche effect, SCM's rescue, the fair-lock adjustments — emerges from
// those protocol rules rather than being scripted.
//
// # Quick start
//
// The package example (Example in the package test suite) is this program,
// compiled and checked:
//
//	sys := hle.NewSystem(8, hle.WithSeed(42))
//	var lock hle.Lock
//	var counter hle.Addr
//	var scheme hle.Scheme
//	sys.Init(func(t *hle.Thread) {
//		lock = hle.NewMCSLock(t)
//		counter = t.AllocLines(1)
//		scheme = hle.Elide(lock, hle.WithSCM(hle.NewMCSLock(t)))
//	})
//	sys.Parallel(8, func(t *hle.Thread) {
//		scheme.Setup(t)
//		for i := 0; i < 1000; i++ {
//			scheme.Run(t, func() {
//				t.Store(counter, t.Load(counter)+1)
//			})
//		}
//	})
//
// Critical sections are closures because simulated hardware rollback
// re-executes them; they must touch shared state only through the
// simulated-memory operations on Thread, which are rolled back exactly.
//
// # Options
//
// Every constructor takes functional options from one shared Option
// namespace; each option documents which constructors accept it, and a
// constructor given an option it does not accept panics with a message
// naming the constructors that do — a misconfigured system is a
// programming error, not a runtime condition. The families:
//
//   - machine options (NewSystem): WithSeed, WithMemory, WithPlacement,
//     WithProfiling (abort attribution, see Profile), WithFaultInjection
//     (chaos engines), WithHardwareExtension (Chapter 7),
//     WithNestedElision, WithConfig;
//   - scheme options (Elide / Removal / Adaptive): WithSCM,
//     WithSCMTuning, Pessimistic, MaxAttempts, WithAdaptiveTuning,
//     WithSubscription (Elide only);
//   - sharded-store options (Sharded): WithShardHashTable, WithShardHash,
//     WithShardStripes, WithShardLock, WithShardScheme,
//     WithShardSchemeName, and WithPlacement again (one option, two
//     accepting constructors).
//
// So Elide(lock) is plain HLE, Elide(lock, WithSCM(aux)) adds the paper's
// conflict management, Removal(lock, Pessimistic()) is Pes-SLR, and
// NewSystem(8, WithPlacement(Arena)) gives every thread a private
// allocation arena.
package hle

import (
	"fmt"

	"hle/internal/adapt"
	"hle/internal/chaos"
	"hle/internal/core"
	"hle/internal/harness"
	"hle/internal/hwext"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/obs"
	"hle/internal/tsx"
)

// Re-exported fundamental types. A Thread is one simulated hardware
// thread; all simulated memory access goes through it. An Addr is a
// simulated memory address (a 64-bit-word index); Addr 0 is nil.
type (
	// Thread is a simulated hardware thread with TSX state.
	Thread = tsx.Thread
	// Addr is a simulated memory address.
	Addr = mem.Addr
	// Lock is a mutual-exclusion lock in simulated memory with standard
	// and speculative (elidable) paths.
	Lock = locks.Lock
	// Scheme executes critical sections over a lock: plain locking,
	// hardware lock elision, SCM, or lock removal.
	Scheme = core.Scheme
	// Result describes how one critical-section execution completed.
	Result = core.Result
	// OpStats aggregates per-operation statistics.
	OpStats = core.OpStats
	// MachineConfig exposes the full simulated-machine configuration
	// for advanced use.
	MachineConfig = tsx.Config
	// Placement selects where the allocator puts fresh word-granular
	// allocations relative to cache lines (see WithPlacement).
	Placement = mem.Placement
	// MemoryLayout is the full allocator layout configuration —
	// placement policy plus its knobs (color count, chunk size, auto-pad
	// plan) — settable wholesale via
	// WithConfig(func(c *MachineConfig) { c.Layout = ... }).
	MemoryLayout = mem.Layout
)

// The placement policies (see WithPlacement). Packed tightly bump-packs
// objects (the baseline, where small objects share cache lines); Padded
// pads every object to private whole lines; Colored spreads consecutive
// allocations across cache-index colors; Arena gives each allocating
// thread a private arena.
const (
	Packed  = mem.Packed
	Padded  = mem.Padded
	Colored = mem.Colored
	Arena   = mem.Arena
)

// System is a simulated multicore machine with TSX support.
type System struct {
	m *tsx.Machine
}

// target is the bitset of constructors an Option applies to.
type target uint8

const (
	tSystem target = 1 << iota
	tElide
	tRemoval
	tAdaptive
	tSharded
)

// String lists the accepting constructors, for misuse panics.
func (tg target) String() string {
	names := []struct {
		bit  target
		name string
	}{
		{tSystem, "NewSystem"}, {tElide, "Elide"}, {tRemoval, "Removal"},
		{tAdaptive, "Adaptive"}, {tSharded, "Sharded"},
	}
	s := ""
	for _, n := range names {
		if tg&n.bit != 0 {
			if s != "" {
				s += "/"
			}
			s += n.name
		}
	}
	if s == "" {
		return "no constructor"
	}
	return s
}

// Option configures one of the package's constructors. All options share
// this one type, so any option can be passed anywhere the compiler is
// concerned — which constructors actually accept it is part of each
// option's contract, documented on its constructor and enforced at
// construction time: a constructor given an inapplicable option panics
// with a message naming the constructors that do accept it.
type Option struct {
	name    string
	targets target
	sys     func(*tsx.Config)
	sch     func(*schemeCfg)
	shd     func(*shardCfg)
}

// SystemOption and ShardOption are the conventional names for options in
// NewSystem and Sharded signatures. They are aliases of Option — the
// namespace is shared; acceptance is checked per constructor.
type (
	SystemOption = Option
	ShardOption  = Option
)

// use validates that the option applies to the invoking constructor.
func (o Option) use(constructor string, bit target) {
	name := o.name
	if name == "" {
		name = "a zero Option value"
	}
	if o.targets&bit == 0 {
		panic(fmt.Sprintf("hle: %s: option %s applies to %s, not %s",
			constructor, name, o.targets, constructor))
	}
}

func sysOption(name string, fn func(*tsx.Config)) Option {
	return Option{name: name, targets: tSystem, sys: fn}
}

func schemeOption(name string, targets target, fn func(*schemeCfg)) Option {
	return Option{name: name, targets: targets, sch: fn}
}

// WithSeed fixes the random seed; equal seeds give bit-identical runs.
// Applies to NewSystem.
func WithSeed(seed int64) SystemOption {
	return sysOption("WithSeed", func(c *tsx.Config) { c.Seed = seed })
}

// WithMemory sets the initial simulated memory size in 64-bit words.
// Applies to NewSystem.
func WithMemory(words int) SystemOption {
	return sysOption("WithMemory", func(c *tsx.Config) { c.MemWords = words })
}

// WithPlacement selects the allocator's placement policy — where fresh
// Thread.Alloc blocks land relative to cache lines (Packed, Padded,
// Colored, Arena). Placement decides which objects share lines, and
// therefore which logically-independent critical sections conflict under
// elision. Applies to NewSystem (machine-wide, carried by checkpoints so
// forked images keep the policy) and to Sharded (a construction-time
// bracket: the store's structures are laid out under the policy, which is
// then restored, so one store can be laid out differently than the rest
// of the machine).
func WithPlacement(p Placement) Option {
	if !p.Valid() {
		panic(fmt.Sprintf("hle: WithPlacement: unknown placement %d", uint8(p)))
	}
	return Option{
		name:    "WithPlacement",
		targets: tSystem | tSharded,
		sys:     func(c *tsx.Config) { c.Layout.Placement = p },
		shd:     func(c *shardCfg) { c.placement, c.placementSet = p, true },
	}
}

// WithHardwareExtension enables the paper's Chapter 7 proposal:
// lock-line conflicts suspend speculative threads instead of aborting
// them. Applies to NewSystem.
func WithHardwareExtension() SystemOption {
	return sysOption("WithHardwareExtension", func(c *tsx.Config) { c.HWExt = true })
}

// WithNestedElision lets XACQUIRE begin an elision inside an RTM
// transaction (Algorithm 3 verbatim); real Haswell lacks this. Applies to
// NewSystem.
func WithNestedElision() SystemOption {
	return sysOption("WithNestedElision", func(c *tsx.Config) { c.NestHLEInRTM = true })
}

// WithConfig applies fn to the underlying machine configuration. Applies
// to NewSystem.
func WithConfig(fn func(*MachineConfig)) SystemOption {
	return sysOption("WithConfig", func(c *tsx.Config) { fn(c) })
}

// WithProfiling attaches an abort-attribution profiler to the system:
// every transactional abort is classified (conflict on the lock line vs a
// data line, capacity, spurious, injected, ...) with the aggressing
// thread and conflicting cache line identified, occupancy is sampled into
// a waterfall time series, and attempt latencies are bucketed by outcome.
// Read the results with System.Profile. Observation is passive and the
// collector only runs at transaction boundaries, so the simulated
// schedule is byte-identical with profiling on or off. Applies to
// NewSystem.
func WithProfiling(opt ProfileOptions) SystemOption {
	return sysOption("WithProfiling", func(c *tsx.Config) { c.Observer = obs.New(opt) })
}

// WithFaultInjection installs a fault injector — typically a chaos
// Engine — consulted by the simulator's hot paths. See NewChaosEngine.
// Applies to NewSystem.
func WithFaultInjection(inj Injector) SystemOption {
	return sysOption("WithFaultInjection", func(c *tsx.Config) { c.Injector = inj })
}

// NewSystem creates a simulated machine with the given number of hardware
// threads (the paper's testbed exposes 8).
func NewSystem(threads int, opts ...SystemOption) *System {
	cfg := tsx.DefaultConfig(threads)
	for _, o := range opts {
		o.use("NewSystem", tSystem)
		o.sys(&cfg)
	}
	return &System{m: tsx.NewMachine(cfg)}
}

// Machine exposes the underlying simulated machine.
func (s *System) Machine() *tsx.Machine { return s.m }

// Profile returns the profiling results accumulated so far, or nil when
// the system was built without WithProfiling. It may be called between
// phases — collection keeps going — and its output is deterministic:
// equal seeds produce byte-identical Profile.JSON.
func (s *System) Profile() *Profile {
	if col, ok := s.m.Observer().(*obs.Collector); ok {
		return col.Profile()
	}
	return nil
}

// Init runs f on a single simulated thread, for allocating and populating
// data structures before a parallel phase.
func (s *System) Init(f func(t *Thread)) {
	s.m.RunOne(f)
}

// Parallel simulates n hardware threads running body and returns them
// (each thread's Clock and Stats are inspectable afterwards). Memory
// contents persist across calls.
func (s *System) Parallel(n int, body func(t *Thread)) []*Thread {
	return s.m.Run(n, body)
}

// Lock constructors (Chapter 3 and Chapter 6 algorithms).
var (
	// NewTTASLock is the test-and-test-and-set spinlock (Algorithm 1).
	NewTTASLock = func(t *Thread) Lock { return locks.NewTTAS(t) }
	// NewMCSLock is the MCS queue lock (Algorithm 2), the fair lock
	// that is HLE-compatible as-is.
	NewMCSLock = func(t *Thread) Lock { return locks.NewMCS(t) }
	// NewTicketLock is the classic ticket lock (Algorithm 4); it cannot
	// be elided (its speculative path falls back to standard locking).
	NewTicketLock = func(t *Thread) Lock { return locks.NewTicket(t) }
	// NewAdjustedTicketLock is the paper's HLE-compatible ticket lock
	// (Algorithm 5).
	NewAdjustedTicketLock = func(t *Thread) Lock { return locks.NewAdjustedTicket(t) }
	// NewCLHLock is the CLH queue lock (Algorithm 6); not elidable.
	NewCLHLock = func(t *Thread) Lock { return locks.NewCLH(t) }
	// NewAdjustedCLHLock is the paper's HLE-compatible CLH lock
	// (Algorithm 7).
	NewAdjustedCLHLock = func(t *Thread) Lock { return locks.NewAdjustedCLH(t) }
)

// Standard wraps lock in plain, non-speculative locking.
func Standard(lock Lock) Scheme { return core.NewStandard(lock) }

// SCMConfig tunes software-assisted conflict management.
type SCMConfig = core.SCMConfig

// schemeCfg accumulates scheme-constructor options.
type schemeCfg struct {
	aux         Lock
	scm         SCMConfig
	scmTuned    bool
	pessimistic bool
	maxAttempts int
	adapt       AdaptiveConfig
	adaptTuned  bool
	sub         Subscription
}

// Subscription selects when an eliding transaction enters the elided lock
// word into its read set (see WithSubscription).
type Subscription = tsx.Subscription

// The subscription modes. Eager is real Haswell HLE: the XACQUIRE read of
// the lock word joins the read set immediately, so a pessimistic
// acquisition anywhere in the transaction's lifetime aborts it. Lazy
// defers that subscription to commit time, keeping the lock line out of
// the transaction's footprint while it runs.
const (
	Eager = tsx.SubEager
	Lazy  = tsx.SubLazy
)

// WithSCM adds software-assisted conflict management (Algorithm 3):
// aborted threads serialize on aux — which the paper requires to be
// starvation-free, e.g. an MCS lock — and rejoin the speculative run, so
// non-conflicting threads keep speculating. Applies to Elide, Removal,
// and Adaptive (where it supplies the SCM rung's auxiliary lock).
func WithSCM(aux Lock) Option {
	return schemeOption("WithSCM", tElide|tRemoval|tAdaptive,
		func(c *schemeCfg) { c.aux = aux })
}

// WithSCMTuning sets explicit SCM tuning (retry budget etc.). Applies to
// Elide, Removal, and Adaptive; requires WithSCM.
func WithSCMTuning(cfg SCMConfig) Option {
	return schemeOption("WithSCMTuning", tElide|tRemoval|tAdaptive,
		func(c *schemeCfg) { c.scm, c.scmTuned = cfg, true })
}

// Pessimistic makes Removal give up speculation after a single failed
// attempt (the paper's Pes-SLR variant). Applies to Removal only.
func Pessimistic() Option {
	return schemeOption("Pessimistic", tRemoval,
		func(c *schemeCfg) { c.pessimistic = true })
}

// MaxAttempts bounds Removal's speculative retries before it falls back
// to the lock (0 selects the paper's 10, §5.1). Applies to Removal only.
func MaxAttempts(n int) Option {
	return schemeOption("MaxAttempts", tRemoval,
		func(c *schemeCfg) { c.maxAttempts = n })
}

// WithSubscription selects the elided lock word's subscription mode.
// The default, Eager, is real Haswell behavior. Lazy defers the lock
// subscription to commit time — the lock line stays out of the read set
// while the critical section runs, so a brief pessimistic acquisition
// that releases before the transaction commits no longer aborts it.
//
// Naive lazy subscription is famously unsafe (Dice, Harris, Kogan, Lev,
// Marathe: a transaction can observe a pessimistic holder's partial
// writes and still commit, or drain its write set over the holder's).
// This implementation is the fixed pipeline: at commit the lock word is
// subscribed and validated BEFORE the write set drains, and a
// pessimistic acquisition landing inside the commit window aborts the
// transaction. internal/explore model-checks both properties — the naive
// variants exist there only, to reproduce the hazards.
//
// Applies to Elide (without WithSCM: SCM's auxiliary-lock protocol
// subscribes eagerly by construction).
func WithSubscription(s Subscription) Option {
	if s != Eager && s != Lazy {
		panic(fmt.Sprintf("hle: WithSubscription: unknown subscription mode %d", uint8(s)))
	}
	return schemeOption("WithSubscription", tElide,
		func(c *schemeCfg) { c.sub = s })
}

// WithAdaptiveTuning sets explicit controller thresholds (windows,
// hysteresis bands, probation backoff). Applies to Adaptive only; zero
// fields keep the adapt defaults.
func WithAdaptiveTuning(cfg AdaptiveConfig) Option {
	return schemeOption("WithAdaptiveTuning", tAdaptive,
		func(c *schemeCfg) { c.adapt, c.adaptTuned = cfg, true })
}

// applyOptions folds opts for the named scheme constructor, panicking on
// options that do not apply to it and on contradictory combinations.
func applyOptions(constructor string, bit target, opts []Option) schemeCfg {
	var c schemeCfg
	for _, o := range opts {
		o.use(constructor, bit)
		o.sch(&c)
	}
	if c.scmTuned && c.aux == nil {
		panic("hle: " + constructor + ": WithSCMTuning requires WithSCM")
	}
	return c
}

// Elide wraps lock in Haswell-style hardware lock elision (Figure 1.1),
// subject to the Chapter 3 avalanche effect under conflicts. WithSCM adds
// the paper's software-assisted conflict management; WithSCMTuning sets
// its knobs; WithSubscription(Lazy) defers the lock-word subscription to
// commit time (fixed lazy-subscription pipeline).
func Elide(lock Lock, opts ...Option) Scheme {
	c := applyOptions("Elide", tElide, opts)
	if c.sub == Lazy {
		if c.aux != nil {
			panic("hle: Elide: WithSubscription(Lazy) excludes WithSCM (the SCM protocol subscribes eagerly by construction)")
		}
		return core.NewHLELazy(lock)
	}
	if c.aux != nil {
		return core.NewHLESCM(lock, c.aux, c.scm)
	}
	return core.NewHLE(lock)
}

// Removal wraps lock in software lock removal (Chapter 5): the critical
// section runs transactionally without reading the lock until commit
// time. By default it is optimistic, retrying up to MaxAttempts times
// (the paper's 10) before falling back to the lock; Pessimistic gives up
// after one failure; WithSCM serializes aborted threads on an auxiliary
// lock instead.
func Removal(lock Lock, opts ...Option) Scheme {
	c := applyOptions("Removal", tRemoval, opts)
	if c.aux != nil {
		if c.pessimistic || c.maxAttempts != 0 {
			panic("hle: Removal: WithSCM excludes Pessimistic/MaxAttempts")
		}
		return core.NewSLRSCM(lock, c.aux, c.scm)
	}
	if c.pessimistic {
		if c.maxAttempts > 1 {
			panic("hle: Removal: Pessimistic contradicts MaxAttempts > 1")
		}
		return core.NewPessimisticSLR(lock)
	}
	return core.NewSLR(lock, c.maxAttempts)
}

// Adaptive re-exports (internal/adapt).
type (
	// AdaptiveConfig tunes the adaptive controller: window size,
	// demotion/promotion thresholds, hysteresis streaks, dwell minimum,
	// and the capped exponential probation backoff. The zero value
	// selects the adapt package defaults.
	AdaptiveConfig = adapt.Config
	// AdaptiveLevel is an execution level of the adaptive scheme:
	// LevelElide, LevelSCM, or LevelSerial.
	AdaptiveLevel = adapt.Level
	// AdaptiveTransition is one controller decision with its hot-swap
	// timing (when the switch applied, when in-flight sections drained).
	AdaptiveTransition = adapt.Transition
)

// The adaptive scheme's execution levels, most to least speculative.
const (
	LevelElide  = adapt.Elide
	LevelSCM    = adapt.SCM
	LevelSerial = adapt.Serial
)

// AdaptiveScheme is the extended interface Adaptive returns: a Scheme
// whose execution level is controller-chosen per lock at runtime, with
// the decision log exposed.
type AdaptiveScheme interface {
	Scheme
	// Level returns the level new critical sections currently adopt.
	Level() AdaptiveLevel
	// Transitions returns the controller's decision log so far.
	Transitions() []AdaptiveTransition
}

// Adaptive wraps lock in the runtime scheme controller: critical sections
// run at full elision while it is profitable, degrade to software-assisted
// conflict management when abort pressure or a collapsing speculative
// fraction signals the Chapter 3 avalanche, fall to a pessimistic
// serializing floor when even SCM cannot help (capacity-dominated abort
// mixes go there directly), and climb back with hysteresis once the storm
// passes. WithSCM supplies the auxiliary lock for the SCM rung (required;
// the paper wants it starvation-free, e.g. an MCS lock), WithSCMTuning its
// retry budget, and WithAdaptiveTuning the controller thresholds. Level
// switches hot-swap: in-flight critical sections finish under the level
// they started with while new arrivals use the new level.
func Adaptive(lock Lock, opts ...Option) AdaptiveScheme {
	c := applyOptions("Adaptive", tAdaptive, opts)
	if c.aux == nil {
		panic("hle: Adaptive: requires WithSCM(aux) for its conflict-management rung")
	}
	return core.NewAdaptive(lock, c.aux, core.AdaptiveConfig{Controller: c.adapt, SCM: c.scm})
}

// ElideWithHardwareExtension pairs with WithHardwareExtension: plain HLE
// on a machine whose conflict detection distinguishes the lock line from
// data lines (Chapter 7).
func ElideWithHardwareExtension(lock Lock) Scheme {
	return hwext.New(lock)
}

// Profiling re-exports (internal/obs).
type (
	// Profile is a profiling result: abort attribution, conflict
	// heatmap, occupancy waterfall, and latency histograms. Render it
	// with Profile.Text or Profile.JSON.
	Profile = obs.Profile
	// ProfileOptions configures WithProfiling (sampling window, heatmap
	// bound). The zero value selects sensible defaults.
	ProfileOptions = obs.Options
)

// Fault-injection and liveness re-exports (internal/chaos and the
// harness watchdog), so adversarial testing is reachable from the public
// surface.
type (
	// Injector is the fault-injection interface the simulator consults
	// when one is installed (WithFaultInjection).
	Injector = tsx.Injector
	// Fault is one scheduled fault of a chaos engine.
	Fault = chaos.Fault
	// FaultKind enumerates the injectable fault kinds (abort storms,
	// capacity squeezes, stalls, grant skew).
	FaultKind = chaos.Kind
	// FaultCounters tallies the faults a chaos engine delivered.
	FaultCounters = chaos.Counters
	// ChaosEngine is a deterministic fault injector driven by a schedule.
	ChaosEngine = chaos.Engine
	// WatchdogConfig arms liveness detection (livelock, starvation,
	// deadlock) on a measurement run.
	WatchdogConfig = harness.WatchdogConfig
	// Watchdog is a liveness monitor built from a WatchdogConfig.
	Watchdog = harness.Watchdog
	// Failure is a watchdog diagnostic: which liveness property broke,
	// where every thread was, and a crash dump of recent events.
	Failure = harness.Failure
)

// NewChaosEngine builds a deterministic fault injector from a schedule;
// install it with WithFaultInjection or Machine().SetInjector.
func NewChaosEngine(faults ...Fault) *ChaosEngine { return chaos.New(faults...) }

// RandomFaultSchedule draws n faults spread over horizon virtual cycles
// across procs threads; equal seeds give equal schedules.
func RandomFaultSchedule(seed int64, procs int, horizon uint64, n int) []Fault {
	return chaos.RandomSchedule(seed, procs, horizon, n)
}

// NewWatchdog builds a liveness monitor for n threads; wire its Check
// into the machine with Machine().SetWatchdog.
func NewWatchdog(cfg WatchdogConfig, n int) *Watchdog {
	return harness.NewWatchdog(cfg, n)
}
