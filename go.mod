module hle

go 1.22
