package hle_test

import (
	"fmt"
	"testing"

	"hle"
)

// Example demonstrates the package-level quick start: eight threads
// incrementing a shared counter under an elided MCS lock with SCM.
func Example() {
	sys := hle.NewSystem(8, hle.WithSeed(42))
	var lock hle.Lock
	var counter hle.Addr
	var scheme hle.Scheme
	sys.Init(func(t *hle.Thread) {
		lock = hle.NewMCSLock(t)
		counter = t.AllocLines(1)
		scheme = hle.Elide(lock, hle.WithSCM(hle.NewMCSLock(t)))
	})
	sys.Parallel(8, func(t *hle.Thread) {
		scheme.Setup(t)
		for i := 0; i < 1000; i++ {
			scheme.Run(t, func() {
				t.Store(counter, t.Load(counter)+1)
			})
		}
	})
	sys.Init(func(t *hle.Thread) {
		fmt.Println("counter =", t.Load(counter))
	})
	// Output: counter = 8000
}

// ExampleWithPlacement contrasts the packed baseline, where consecutive
// small allocations share a cache line (and therefore make
// logically-independent critical sections conflict under elision), with
// the padded policy, which gives every object private whole lines.
func ExampleWithPlacement() {
	for _, p := range []hle.Placement{hle.Packed, hle.Padded} {
		sys := hle.NewSystem(2, hle.WithSeed(1), hle.WithPlacement(p))
		var a, b hle.Addr
		sys.Init(func(t *hle.Thread) {
			a = t.Alloc(2)
			b = t.Alloc(2)
		})
		fmt.Printf("%s: a on line %d, b on line %d\n", p, a/8, b/8)
	}
	// Output:
	// packed: a on line 1, b on line 1
	// padded: a on line 1, b on line 2
}

// TestEverySchemeEveryLock exercises the full public construction matrix
// for serializability.
func TestEverySchemeEveryLock(t *testing.T) {
	lockMakers := map[string]func(*hle.Thread) hle.Lock{
		"TTAS":      hle.NewTTASLock,
		"MCS":       hle.NewMCSLock,
		"Ticket":    hle.NewTicketLock,
		"AdjTicket": hle.NewAdjustedTicketLock,
		"CLH":       hle.NewCLHLock,
		"AdjCLH":    hle.NewAdjustedCLHLock,
	}
	schemeMakers := map[string]func(t *hle.Thread, mk func(*hle.Thread) hle.Lock) hle.Scheme{
		"Standard": func(t *hle.Thread, mk func(*hle.Thread) hle.Lock) hle.Scheme {
			return hle.Standard(mk(t))
		},
		"Elide": func(t *hle.Thread, mk func(*hle.Thread) hle.Lock) hle.Scheme {
			return hle.Elide(mk(t))
		},
		"Elide+SCM": func(t *hle.Thread, mk func(*hle.Thread) hle.Lock) hle.Scheme {
			return hle.Elide(mk(t), hle.WithSCM(hle.NewMCSLock(t)))
		},
		"Removal": func(t *hle.Thread, mk func(*hle.Thread) hle.Lock) hle.Scheme {
			return hle.Removal(mk(t))
		},
		"Removal-Pessimistic": func(t *hle.Thread, mk func(*hle.Thread) hle.Lock) hle.Scheme {
			return hle.Removal(mk(t), hle.Pessimistic())
		},
		"Removal+SCM": func(t *hle.Thread, mk func(*hle.Thread) hle.Lock) hle.Scheme {
			return hle.Removal(mk(t), hle.WithSCM(hle.NewMCSLock(t)))
		},
	}
	for ln, lmk := range lockMakers {
		for sn, smk := range schemeMakers {
			t.Run(sn+"/"+ln, func(t *testing.T) {
				sys := hle.NewSystem(4, hle.WithSeed(7))
				var counter hle.Addr
				var scheme hle.Scheme
				sys.Init(func(th *hle.Thread) {
					counter = th.AllocLines(1)
					scheme = smk(th, lmk)
				})
				sys.Parallel(4, func(th *hle.Thread) {
					scheme.Setup(th)
					for i := 0; i < 50; i++ {
						scheme.Run(th, func() {
							v := th.Load(counter)
							th.Work(3)
							th.Store(counter, v+1)
						})
					}
				})
				var got uint64
				sys.Init(func(th *hle.Thread) { got = th.Load(counter) })
				if got != 200 {
					t.Fatalf("counter = %d, want 200", got)
				}
			})
		}
	}
}

// TestHardwareExtensionOption wires the Chapter 7 configuration end to end.
func TestHardwareExtensionOption(t *testing.T) {
	sys := hle.NewSystem(4, hle.WithSeed(3), hle.WithHardwareExtension())
	var lock hle.Lock
	var counter hle.Addr
	var scheme hle.Scheme
	sys.Init(func(th *hle.Thread) {
		lock = hle.NewTTASLock(th)
		counter = th.AllocLines(1)
		scheme = hle.ElideWithHardwareExtension(lock)
	})
	sys.Parallel(4, func(th *hle.Thread) {
		scheme.Setup(th)
		for i := 0; i < 100; i++ {
			scheme.Run(th, func() {
				th.Store(counter, th.Load(counter)+1)
			})
		}
	})
	var got uint64
	sys.Init(func(th *hle.Thread) { got = th.Load(counter) })
	if got != 400 {
		t.Fatalf("counter = %d, want 400", got)
	}
	if scheme.Name() != "HLE-HWExt" {
		t.Errorf("scheme name %q", scheme.Name())
	}
}

// TestDeterminismAcrossSystems: two identically-seeded systems agree on
// every statistic.
func TestDeterminismAcrossSystems(t *testing.T) {
	run := func() hle.OpStats {
		sys := hle.NewSystem(4, hle.WithSeed(99))
		var lock hle.Lock
		var counter hle.Addr
		var scheme hle.Scheme
		sys.Init(func(th *hle.Thread) {
			lock = hle.NewTTASLock(th)
			counter = th.AllocLines(1)
			scheme = hle.Elide(lock)
		})
		sys.Parallel(4, func(th *hle.Thread) {
			scheme.Setup(th)
			for i := 0; i < 200; i++ {
				scheme.Run(th, func() {
					th.Store(counter, th.Load(counter)+1)
				})
			}
		})
		return scheme.TotalStats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestWithConfigOption verifies advanced configuration plumbing.
func TestWithConfigOption(t *testing.T) {
	sys := hle.NewSystem(2, hle.WithConfig(func(c *hle.MachineConfig) {
		c.SpuriousPerAccess = 0.5
		c.Seed = 5
	}))
	aborted := false
	sys.Init(func(th *hle.Thread) {
		for i := 0; i < 20 && !aborted; i++ {
			ok, _ := th.RTM(func() {
				a := th.Alloc(1)
				th.Store(a, 1)
			})
			if !ok {
				aborted = true
			}
		}
	})
	if !aborted {
		t.Fatal("0.5 spurious rate produced no aborts in 20 transactions")
	}
}

// TestFacadeOptions covers the remaining configuration surface.
func TestFacadeOptions(t *testing.T) {
	sys := hle.NewSystem(2,
		hle.WithSeed(5),
		hle.WithMemory(1<<17),
		hle.WithNestedElision(),
	)
	if sys.Machine() == nil {
		t.Fatal("Machine accessor nil")
	}
	if !sys.Machine().Config().NestHLEInRTM {
		t.Fatal("WithNestedElision not applied")
	}
	var counter hle.Addr
	var scheme hle.Scheme
	sys.Init(func(th *hle.Thread) {
		counter = th.AllocLines(1)
		// Ideal Algorithm 3 on the nesting-capable machine, with
		// explicit tuning.
		scheme = hle.Elide(hle.NewMCSLock(th), hle.WithSCM(hle.NewMCSLock(th)),
			hle.WithSCMTuning(hle.SCMConfig{MaxRetries: 5, Ideal: true}))
	})
	sys.Parallel(2, func(th *hle.Thread) {
		scheme.Setup(th)
		for i := 0; i < 100; i++ {
			scheme.Run(th, func() {
				th.Store(counter, th.Load(counter)+1)
			})
		}
	})
	var got uint64
	sys.Init(func(th *hle.Thread) { got = th.Load(counter) })
	if got != 200 {
		t.Fatalf("counter = %d, want 200", got)
	}
	if scheme.Name() != "HLE-SCM-ideal" {
		t.Errorf("scheme name %q", scheme.Name())
	}
}
